// Tests for the obs telemetry layer (DESIGN.md §12): span tracer semantics
// (nesting, per-thread merge, Chrome export), metric atomicity under the
// thread pool, the disabled-mode overhead contract, rank imbalance stats,
// step-report JSONL validity, and the tracing-never-changes-results gate.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/fields.hpp"
#include "chns/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/rankstats.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace pt {
namespace {

// ---- Minimal strict JSON parser (validation only, no external deps) --------

class JsonChecker {
 public:
  explicit JsonChecker(std::string s) : s_(std::move(s)) {}

  /// True iff the whole string is exactly one valid JSON value.
  bool valid() {
    i_ = 0;
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // {
    ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // [
    ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool lit(const char* l) {
    for (; *l; ++l, ++i_)
      if (i_ >= s_.size() || s_[i_] != *l) return false;
    return true;
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  std::string s_;
  std::size_t i_ = 0;
};

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  if (!f) return out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Guard that leaves the global tracer disabled and drained.
struct TracerCleanup {
  ~TracerCleanup() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().drain();
  }
};

// ---- Phase accumulators ----------------------------------------------------

TEST(ObsPhase, ScopedPhaseAccumulates) {
  obs::Phase p;
  { obs::ScopedPhase sp(p); }
  { obs::ScopedPhase sp(p); }
  EXPECT_EQ(p.calls(), 2);
  EXPECT_GE(p.seconds(), 0.0);
  p.reset();
  EXPECT_EQ(p.calls(), 0);
  EXPECT_EQ(p.seconds(), 0.0);
}

TEST(ObsPhase, ConcurrentLapsAreExact) {
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  obs::PhaseSet ps;
  obs::Phase& p = ps["shared"];
  constexpr int kPerPart = 500;
  pool.parallelFor(static_cast<std::size_t>(pool.threads()),
                   [&](int, std::size_t b, std::size_t e) {
                     for (std::size_t part = b; part < e; ++part)
                       for (int i = 0; i < kPerPart; ++i)
                         obs::ScopedPhase sp(p);
                   });
  EXPECT_EQ(p.calls(), static_cast<long>(pool.threads()) * kPerPart);
  pool.setThreads(1);
}

// ---- Metrics registry ------------------------------------------------------

TEST(ObsMetrics, CounterAtomicUnderThreads) {
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  obs::Registry reg;
  obs::Counter& c = reg.counter("hits");
  constexpr long long kN = 100000;
  pool.parallelFor(static_cast<std::size_t>(4 * kN),
                   [&](int, std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) c.inc();
                   });
  EXPECT_EQ(c.value(), 4 * kN);
  pool.setThreads(1);
}

TEST(ObsMetrics, HistogramBucketsAndStats) {
  obs::Histogram h;
  EXPECT_EQ(obs::Histogram::bucketOf(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucketOf(0.99), 0);
  EXPECT_EQ(obs::Histogram::bucketOf(1.0), 1);
  EXPECT_EQ(obs::Histogram::bucketOf(2.0), 2);
  EXPECT_EQ(obs::Histogram::bucketOf(3.0), 2);
  EXPECT_EQ(obs::Histogram::bucketOf(4.0), 3);
  h.add(1.0);
  h.add(3.0);
  h.add(8.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(4), 1);
}

TEST(ObsMetrics, RegistrySnapshots) {
  obs::Registry reg;
  reg.counter("a").inc(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h").add(7.0);
  auto cs = reg.counters();
  auto gs = reg.gauges();
  auto hs = reg.histograms();
  EXPECT_EQ(cs.at("a").value, 5);
  EXPECT_DOUBLE_EQ(gs.at("g").value, 2.5);
  EXPECT_EQ(hs.at("h").count, 1);
  EXPECT_DOUBLE_EQ(hs.at("h").max, 7.0);
}

// ---- Span tracer -----------------------------------------------------------

TEST(ObsTrace, SpanNestingAndOrdering) {
  TracerCleanup cleanup;
  auto& tr = obs::Tracer::instance();
  tr.drain();
  tr.enable();
  {
    obs::SpanScope outer("outer");
    { obs::SpanScope inner("inner"); }
    { obs::SpanScope inner2("inner2"); }
  }
  tr.disable();
  std::vector<obs::TraceEvent> evs = tr.drain();
  ASSERT_EQ(evs.size(), 3u);
  // Sorted by (tid, startNs, depth): outer opened first.
  EXPECT_STREQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].depth, 0);
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_EQ(evs[1].depth, 1);
  EXPECT_STREQ(evs[2].name, "inner2");
  EXPECT_EQ(evs[2].depth, 1);
  // Parent encloses children.
  EXPECT_LE(evs[0].startNs, evs[1].startNs);
  EXPECT_GE(evs[0].startNs + evs[0].durNs, evs[2].startNs + evs[2].durNs);
  // inner precedes inner2 on the same thread.
  EXPECT_LE(evs[1].startNs + evs[1].durNs, evs[2].startNs);
  EXPECT_EQ(evs[0].tid, evs[1].tid);
}

TEST(ObsTrace, PerThreadMergeIsDeterministic) {
  TracerCleanup cleanup;
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  static const char* kNames[] = {"p0", "p1", "p2", "p3"};
  constexpr int kReps = 50;
  auto run = [&] {
    auto& tr = obs::Tracer::instance();
    tr.drain();
    tr.enable();
    pool.parallelFor(static_cast<std::size_t>(pool.threads()),
                     [&](int part, std::size_t b, std::size_t e) {
                       for (std::size_t p = b; p < e; ++p)
                         for (int i = 0; i < kReps; ++i)
                           obs::SpanScope s(kNames[p]);
                     });
    tr.disable();
    // Per-tid ordered name sequences, then sorted across tids: independent
    // of which OS thread got which tid this run.
    std::map<int, std::vector<std::string>> byTid;
    for (const obs::TraceEvent& ev : tr.drain())
      byTid[ev.tid].push_back(ev.name);
    std::vector<std::vector<std::string>> seqs;
    for (auto& [tid, seq] : byTid) seqs.push_back(seq);
    std::sort(seqs.begin(), seqs.end());
    return seqs;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  // Fixed partition geometry: every partition's spans stay on one thread,
  // in issue order.
  std::size_t total = 0;
  for (const auto& seq : a) {
    ASSERT_FALSE(seq.empty());
    for (const auto& n : seq) EXPECT_EQ(n, seq.front());
    EXPECT_EQ(seq.size() % kReps, 0u);
    total += seq.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(pool.threads()) * kReps);
  pool.setThreads(1);
}

TEST(ObsTrace, ChromeTraceFileIsWellFormed) {
  TracerCleanup cleanup;
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  auto& tr = obs::Tracer::instance();
  tr.drain();
  tr.enable();
  {
    obs::SpanScope s("top \"quoted\" name");
    pool.parallelFor(static_cast<std::size_t>(pool.threads()),
                     [&](int, std::size_t b, std::size_t e) {
                       for (std::size_t p = b; p < e; ++p)
                         obs::SpanScope w("worker-span");
                     });
  }
  tr.disable();
  const std::string path = "test_obs_trace.json";
  ASSERT_TRUE(tr.writeChromeTrace(path));
  const std::string body = slurp(path);
  JsonChecker jc(body);
  EXPECT_TRUE(jc.valid()) << body.substr(0, 400);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(body.find("worker-span"), std::string::npos);
  std::remove(path.c_str());
  pool.setThreads(1);
}

TEST(ObsTrace, DisabledSpanOverheadBound) {
  // Force-disable: under the release-trace ctest preset PT_TRACE is set and
  // a prior test may have run the env hookup.
  obs::Tracer::instance().disable();
  ASSERT_FALSE(obs::Tracer::active());
  constexpr long kIters = 2000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < kIters; ++i) {
    PT_SPAN("noop");
  }
  const double ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                               t0)
          .count() /
      kIters;
  // Contract: a disabled span is one relaxed load + branch. The bound is
  // deliberately loose (sanitizer builds instrument the load) while still
  // catching any accidental lock, allocation, or clock read on the path.
  EXPECT_LT(ns, 250.0);
}

// ---- Rank stats ------------------------------------------------------------

TEST(ObsRankStats, ImbalanceSummaryFromSimClocks) {
  sim::SimComm comm(4, sim::Machine::loopback());
  obs::RankPhases<sim::SimComm> rp(&comm);
  rp.setEnabled(true);
  rp.begin();
  for (int r = 0; r < 4; ++r) comm.chargeWork(r, 1e6 * (r + 1));
  rp.end("solve");
  const std::vector<double> per = rp.perRank("solve");
  ASSERT_EQ(per.size(), 4u);
  for (int r = 1; r < 4; ++r) EXPECT_GT(per[r], per[r - 1]);
  const obs::RankSummary s = rp.summary("solve");
  EXPECT_DOUBLE_EQ(s.minSec, per[0]);
  EXPECT_DOUBLE_EQ(s.maxSec, per[3]);
  EXPECT_NEAR(s.meanSec, (per[0] + per[1] + per[2] + per[3]) / 4.0, 1e-15);
  EXPECT_NEAR(s.imbalance, s.maxSec / s.meanSec, 1e-12);
  EXPECT_GT(s.imbalance, 1.0);
}

TEST(ObsRankStats, DisabledScopeIsNoop) {
  sim::SimComm comm(2, sim::Machine::loopback());
  obs::RankPhases<sim::SimComm> rp(&comm);
  {
    obs::RankPhases<sim::SimComm>::Scope sc(rp, "w");
    comm.chargeWork(0, 1e6);
  }
  EXPECT_TRUE(rp.perRank("w").empty());
  EXPECT_TRUE(rp.all().empty());
}

// ---- Step reports ----------------------------------------------------------

TEST(ObsReport, StepReporterEmitsValidJsonlWithExactDeltas) {
  const std::string path = "test_obs_steps.jsonl";
  obs::PhaseSet phases;
  obs::Registry metrics;
  {
    obs::StepReporter rep(path);
    ASSERT_TRUE(rep.ok());
    for (long step = 1; step <= 3; ++step) {
      { obs::ScopedPhase sp(phases["ch-solve"]); }
      phases["ns-solve"].add(0.125 * step);
      metrics.counter("meshRebuilds").inc();
      rep.writeStep(step, phases, metrics, {}, {{"dt", 1e-3}});
    }
  }
  const std::string body = slurp(path);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  double nsSum = 0;
  long chCalls = 0;
  for (const std::string& line : lines) {
    JsonChecker jc(line);
    EXPECT_TRUE(jc.valid()) << line;
    EXPECT_NE(line.find("\"schema\": \"pt-step-v1\""), std::string::npos);
    EXPECT_NE(line.find("\"phases\""), std::string::npos);
    EXPECT_NE(line.find("\"counters\""), std::string::npos);
    // Pull the ns-solve per-step delta out of the line (fixed formatting).
    const std::size_t k = line.find("\"ns-solve\": {\"sec\": ");
    ASSERT_NE(k, std::string::npos);
    nsSum += std::atof(line.c_str() + k + 21);
    const std::size_t c = line.find("\"ch-solve\": {\"sec\": ");
    ASSERT_NE(c, std::string::npos);
    const std::size_t cc = line.find("\"calls\": ", c);
    chCalls += std::atol(line.c_str() + cc + 9);
  }
  // Summed per-step deltas reproduce the cumulative totals.
  EXPECT_NEAR(nsSum, phases["ns-solve"].seconds(), 1e-9);
  EXPECT_EQ(chCalls, phases["ch-solve"].calls());
  std::remove(path.c_str());
}

TEST(ObsReport, BenchReportIsValidJson) {
  const std::string path = "test_obs_bench.json";
  obs::BenchReport r("unit_bench");
  r.info["workload"] = "tiny";
  obs::BenchConfig c;
  c.name = "base\"line";  // escaping must hold
  c.metrics["total_sec"] = 1.25;
  c.phases["ch-solve"] = obs::PhaseStat(0.5, 2);
  c.counters["meshRebuilds"] = 3;
  c.series["step_sec"] = {0.6, 0.65};
  r.configs.push_back(c);
  r.derived["speedup"] = 1.0;
  ASSERT_TRUE(r.write(path));
  const std::string body = slurp(path);
  JsonChecker jc(body);
  EXPECT_TRUE(jc.valid()) << body.substr(0, 400);
  EXPECT_NE(body.find("\"schema\": \"pt-bench-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"configs\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- Tracing never changes results -----------------------------------------

struct History {
  std::vector<Field> phi, vel;
  std::vector<int> newtonIters, nsIters, ppIters;
  std::vector<Real> residuals;
};

History runDrop(bool trace) {
  TracerCleanup cleanup;
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<2> opt;
  opt.params.Cn = 0.04;
  opt.dt = 2e-3;
  opt.blocksPerStep = 1;
  opt.remeshEvery = 2;
  opt.coarseLevel = 3;
  opt.interfaceLevel = 5;
  opt.featureLevel = 5;
  opt.referenceLevel = 5;
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  chns::ChnsSolver<2> s(comm, std::move(tree), opt);
  // After construction: Telemetry's env hookup (PT_TRACE) may have enabled
  // the tracer, so force the state this leg of the comparison needs.
  auto& tr = obs::Tracer::instance();
  tr.drain();
  if (trace)
    tr.enable();
  else
    tr.disable();
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  History h;
  for (int i = 0; i < 4; ++i) {
    s.step();
    h.phi.push_back(s.phi());
    h.vel.push_back(s.velocity());
    h.newtonIters.push_back(s.lastChNewton_.iterations);
    h.nsIters.push_back(s.lastNs_.iterations);
    h.ppIters.push_back(s.lastPp_.iterations);
    h.residuals.push_back(s.lastChNewton_.residualNorm);
  }
  return h;
}

TEST(ObsTrace, SolverHistoryBitwiseIdenticalTracingOnOff) {
  History off = runDrop(false);
  History on = runDrop(true);
  ASSERT_EQ(off.phi.size(), on.phi.size());
  for (std::size_t i = 0; i < off.phi.size(); ++i) {
    EXPECT_EQ(off.newtonIters[i], on.newtonIters[i]) << "step " << i;
    EXPECT_EQ(off.nsIters[i], on.nsIters[i]) << "step " << i;
    EXPECT_EQ(off.ppIters[i], on.ppIters[i]) << "step " << i;
    // Bitwise equality: memcmp-style via exact double compares.
    EXPECT_EQ(off.residuals[i], on.residuals[i]) << "step " << i;
    for (std::size_t r = 0; r < off.phi[i].size(); ++r) {
      EXPECT_EQ(off.phi[i][r], on.phi[i][r]) << "step " << i;
      EXPECT_EQ(off.vel[i][r], on.vel[i][r]) << "step " << i;
    }
  }
}

// ---- Solver telemetry integration ------------------------------------------

TEST(ObsTelemetry, SolverPopulatesMetricsAndRankStats) {
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<2> opt;
  opt.params.Cn = 0.04;
  opt.dt = 2e-3;
  opt.blocksPerStep = 1;
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  chns::ChnsSolver<2> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  s.telemetry().ranks.setEnabled(true);
  const auto stats0 = comm.stats();
  s.step();
  auto counters = s.telemetry().metrics.counters();
  EXPECT_GT(counters.at("ch-newton-iters").value, 0);
  EXPECT_GT(counters.at("pp-ksp-iters").value, 0);
  EXPECT_EQ(counters.at("meshRebuilds").value, s.meshRebuilds());
  auto hist = s.telemetry().metrics.histograms();
  EXPECT_EQ(hist.at("ksp-iters-pp").count, 1);
  // Rank attribution recorded the solve phases without extra collectives
  // beyond what the step itself performs (local clock folding only).
  auto ranks = s.telemetry().ranks.all();
  ASSERT_TRUE(ranks.count("ch-solve"));
  EXPECT_GE(ranks["ch-solve"].imbalance, 1.0);
  EXPECT_GT(ranks["ch-solve"].maxSec, 0.0);
  // The per-step JSONL emitter accepts the solver's telemetry directly.
  const std::string path = "test_obs_solver_steps.jsonl";
  {
    obs::StepReporter rep(path);
    rep.writeStep(s.stepsTaken(), s.timers(), s.telemetry().metrics,
                  s.telemetry().ranks.all(),
                  {{"dt", opt.dt}});
  }
  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty());
  JsonChecker jc(body.substr(0, body.find('\n')));
  EXPECT_TRUE(jc.valid()) << body;
  EXPECT_NE(body.find("\"ranks\""), std::string::npos);
  std::remove(path.c_str());
  (void)stats0;
}

#ifdef PT_MATVEC_TIMERS
TEST(ObsMatvec, PhasesAccumulateUnderThreadedPools) {
  // The PR-2-era race gate is gone: with a 4-participant pool the matvec
  // phase accumulators must still record (they used to no-op).
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  const double gather0 = fem::matvecPhases()["gather"].seconds();
  const long calls0 = fem::matvecPhases()["kernel"].calls();
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto mesh = Mesh<2>::build(comm, tree);
  Field x = mesh.makeField(1), y = mesh.makeField(1);
  for (auto& v : x[0]) v = 1.0;
  for (auto& v : x[1]) v = 1.0;
  fem::massMatvec(mesh, x, y);
  EXPECT_GT(fem::matvecPhases()["kernel"].calls(), calls0);
  EXPECT_GE(fem::matvecPhases()["gather"].seconds(), gather0);
  pool.setThreads(1);
}
#endif

}  // namespace
}  // namespace pt
