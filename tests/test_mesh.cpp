#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "amr/refine.hpp"
#include "fem/matvec.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

template <int DIM>
DistTree<DIM> makeDistTree(sim::SimComm& comm, const OctList<DIM>& global) {
  return DistTree<DIM>::fromGlobal(comm, global);
}

/// A balanced adaptive tree refined around a spherical interface.
template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        const Real dist = std::abs(std::sqrt(r2) - 0.3);
        return dist < 2.0 * o.physSize() ? fine : coarse;
      },
      tree);
  return balanceTree(tree);
}

template <int DIM>
Real linearFn(const VecN<DIM>& x) {
  Real v = 1.0;
  for (int d = 0; d < DIM; ++d) v += (d + 2.0) * x[d];
  return v;
}

// ---- Node enumeration -------------------------------------------------------

struct MeshCase {
  int ranks;
};
class MeshP : public ::testing::TestWithParam<MeshCase> {};

TEST_P(MeshP, UniformGridNodeCount2D) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  const Level L = 3;
  auto dt = makeDistTree<2>(comm, uniformTree<2>(L));
  auto mesh = Mesh<2>::build(comm, dt);
  const GlobalIdx side = (GlobalIdx(1) << L) + 1;
  EXPECT_EQ(mesh.globalNodeCount(), side * side);
  // No hanging corners on a uniform grid.
  for (int r = 0; r < p; ++r)
    for (char h : mesh.rank(r).cornerIsHanging) EXPECT_EQ(h, 0);
}

TEST_P(MeshP, UniformGridNodeCount3D) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  const Level L = 2;
  auto dt = makeDistTree<3>(comm, uniformTree<3>(L));
  auto mesh = Mesh<3>::build(comm, dt);
  const GlobalIdx side = (GlobalIdx(1) << L) + 1;
  EXPECT_EQ(mesh.globalNodeCount(), side * side * side);
}

TEST_P(MeshP, GlobalIdsAreAPermutation) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  std::map<GlobalIdx, NodeKey<2>> seen;
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const GlobalIdx id = rm.nodeIds[li];
      ASSERT_GE(id, 0);
      ASSERT_LT(id, mesh.globalNodeCount());
      auto [it, inserted] = seen.emplace(id, rm.nodeKeys[li]);
      if (!inserted) {
        EXPECT_EQ(it->second, rm.nodeKeys[li]);  // same key
      }
    }
  }
  EXPECT_EQ(static_cast<GlobalIdx>(seen.size()), mesh.globalNodeCount());
}

TEST_P(MeshP, OwnershipAndSharersConsistent) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const auto& sh = rm.nodeSharers[li];
      ASSERT_FALSE(sh.empty());
      EXPECT_TRUE(std::is_sorted(sh.begin(), sh.end()));
      EXPECT_EQ(rm.nodeOwner[li], sh.front());
      // I must be among the sharers of my own node.
      EXPECT_TRUE(std::find(sh.begin(), sh.end(), r) != sh.end());
    }
  }
}

// The 2:1-balance lemma behind parent-corner interpolation: no support node
// of a hanging corner is itself hanging.
TEST_P(MeshP, HangingSupportsAreRealNodes) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<3>(comm, interfaceTree<3>(1, 4));
  auto mesh = Mesh<3>::build(comm, dt);
  // Hanging vertex keys (global union).
  std::set<NodeKey<3>, NodeKeyLess<3>> hangingKeys;
  constexpr int kC = 8;
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e)
      for (int c = 0; c < kC; ++c)
        if (rm.cornerIsHanging[e * kC + c])
          hangingKeys.insert(cornerKey(rm.elems[e], c));
  }
  EXPECT_FALSE(hangingKeys.empty());  // the mesh does have hanging nodes
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e)
      for (int c = 0; c < kC; ++c) {
        const std::uint32_t lo = rm.cornerOffset[e * kC + c];
        const std::uint32_t hi = rm.cornerOffset[e * kC + c + 1];
        for (std::uint32_t s = lo; s < hi; ++s)
          EXPECT_EQ(hangingKeys.count(rm.nodeKeys[rm.supports[s].node]), 0u);
      }
  }
}

// The decisive correctness test: hanging interpolation must reproduce
// globally linear fields exactly at every element corner.
TEST_P(MeshP, LinearFieldReproducedExactly2D) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 6));
  auto mesh = Mesh<2>::build(comm, dt);
  Field u = mesh.makeField();
  fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = linearFn<2>(x);
  });
  constexpr int kC = 4;
  Real uLoc[kC];
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      fem::gatherElem(rm, e, u[r], 1, uLoc);
      for (int c = 0; c < kC; ++c) {
        const auto key = cornerKey(rm.elems[e], c);
        EXPECT_NEAR(uLoc[c], linearFn<2>(nodeCoords(key)), 1e-12);
      }
    }
  }
}

TEST_P(MeshP, LinearFieldReproducedExactly3D) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<3>(comm, interfaceTree<3>(1, 4));
  auto mesh = Mesh<3>::build(comm, dt);
  Field u = mesh.makeField();
  fem::setByPosition<3>(mesh, u, 1, [](const VecN<3>& x, Real* v) {
    v[0] = linearFn<3>(x);
  });
  constexpr int kC = 8;
  Real uLoc[kC];
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      fem::gatherElem(rm, e, u[r], 1, uLoc);
      for (int c = 0; c < kC; ++c) {
        const auto key = cornerKey(rm.elems[e], c);
        EXPECT_NEAR(uLoc[c], linearFn<3>(nodeCoords(key)), 1e-12);
      }
    }
  }
}

// ---- Ghost exchange ---------------------------------------------------------

TEST_P(MeshP, AccumulateCountsSharers) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  Field f = mesh.makeField();
  for (int r = 0; r < p; ++r) std::fill(f[r].begin(), f[r].end(), 1.0);
  mesh.accumulate(f);
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      EXPECT_DOUBLE_EQ(f[r][li], static_cast<Real>(rm.nodeSharers[li].size()));
  }
}

TEST_P(MeshP, GhostReadPropagatesOwnerValues) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  Field f = mesh.makeField();
  // Owners write their global id; ghosts start stale at -1.
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      f[r][li] = (rm.nodeOwner[li] == r) ? Real(rm.nodeIds[li]) : -1.0;
  }
  mesh.ghostRead(f);
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      EXPECT_DOUBLE_EQ(f[r][li], Real(rm.nodeIds[li]));
  }
}

TEST_P(MeshP, InsertConsistentOverwritesEverywhere) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  Field f = mesh.makeField();
  sim::PerRank<std::vector<char>> written(p);
  for (int r = 0; r < p; ++r) {
    std::fill(f[r].begin(), f[r].end(), 0.0);
    written[r].assign(mesh.rank(r).nNodes(), 0);
  }
  // Rank p-1 inserts 7.0 at all of its local nodes.
  const int writer = p - 1;
  std::fill(f[writer].begin(), f[writer].end(), 7.0);
  std::fill(written[writer].begin(), written[writer].end(), 1);
  mesh.insertConsistent(f, written);
  // Every copy of every node the writer touched must now read 7.
  std::set<NodeKey<2>, NodeKeyLess<2>> touched(
      mesh.rank(writer).nodeKeys.begin(), mesh.rank(writer).nodeKeys.end());
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      if (touched.count(rm.nodeKeys[li])) {
        EXPECT_DOUBLE_EQ(f[r][li], 7.0) << "rank " << r << " node " << li;
      }
  }
}

TEST_P(MeshP, DotCountsEachNodeOnce) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  Field ones = mesh.makeField();
  for (int r = 0; r < p; ++r)
    std::fill(ones[r].begin(), ones[r].end(), 1.0);
  EXPECT_DOUBLE_EQ(mesh.dot(ones, ones), Real(mesh.globalNodeCount()));
}

// ---- MATVEC ----------------------------------------------------------------

TEST_P(MeshP, MassTimesOnesIntegratesToVolume) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 6));
  auto mesh = Mesh<2>::build(comm, dt);
  Field ones = mesh.makeField(), Mu = mesh.makeField();
  for (int r = 0; r < p; ++r)
    std::fill(ones[r].begin(), ones[r].end(), 1.0);
  fem::massMatvec(mesh, ones, Mu);
  // 1^T M 1 = volume of the unit square.
  EXPECT_NEAR(mesh.dot(ones, Mu), 1.0, 1e-12);
}

TEST_P(MeshP, MassIntegratesLinearExactly) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 6));
  auto mesh = Mesh<2>::build(comm, dt);
  Field u = mesh.makeField(), Mu = mesh.makeField(), ones = mesh.makeField();
  fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = linearFn<2>(x);  // 1 + 2x + 3y
  });
  for (int r = 0; r < p; ++r)
    std::fill(ones[r].begin(), ones[r].end(), 1.0);
  fem::massMatvec(mesh, u, Mu);
  // ∫ (1 + 2x + 3y) over [0,1]^2 = 1 + 1 + 1.5 = 3.5.
  EXPECT_NEAR(mesh.dot(ones, Mu), 3.5, 1e-12);
}

TEST_P(MeshP, StiffnessAnnihilatesConstants) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<3>(comm, interfaceTree<3>(1, 4));
  auto mesh = Mesh<3>::build(comm, dt);
  Field c = mesh.makeField(), Kc = mesh.makeField();
  for (int r = 0; r < p; ++r) std::fill(c[r].begin(), c[r].end(), 4.2);
  fem::stiffnessMatvec(mesh, c, Kc);
  EXPECT_NEAR(mesh.maxAbs(Kc), 0.0, 1e-12);
}

TEST_P(MeshP, StiffnessEnergyOfLinearField) {
  const int p = GetParam().ranks;
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = makeDistTree<2>(comm, interfaceTree<2>(2, 6));
  auto mesh = Mesh<2>::build(comm, dt);
  Field u = mesh.makeField(), Ku = mesh.makeField();
  fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = linearFn<2>(x);  // grad = (2,3)
  });
  fem::stiffnessMatvec(mesh, u, Ku);
  // u^T K u = ∫ |grad u|^2 = 4 + 9 = 13 exactly (u is in the FE space).
  EXPECT_NEAR(mesh.dot(u, Ku), 13.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Ranks, MeshP,
                         ::testing::Values(MeshCase{1}, MeshCase{2},
                                           MeshCase{3}, MeshCase{5}));

// MATVEC must be partition-invariant: identical results by global id for
// any rank count.
TEST(MeshInvariance, MassMatvecPartitionInvariant) {
  auto run = [](int p) {
    sim::SimComm comm(p, sim::Machine::loopback());
    auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 6));
    auto mesh = Mesh<2>::build(comm, dt);
    Field u = mesh.makeField(), Mu = mesh.makeField();
    fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& x, Real* v) {
      v[0] = std::sin(3 * x[0]) * std::cos(2 * x[1]);
    });
    fem::massMatvec(mesh, u, Mu);
    std::map<std::pair<std::uint32_t, std::uint32_t>, Real> byKey;
    for (int r = 0; r < p; ++r) {
      const auto& rm = mesh.rank(r);
      for (std::size_t li = 0; li < rm.nNodes(); ++li)
        byKey[{rm.nodeKeys[li][0], rm.nodeKeys[li][1]}] = Mu[r][li];
    }
    return byKey;
  };
  auto one = run(1);
  auto four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (const auto& [k, v] : one) {
    ASSERT_TRUE(four.count(k));
    EXPECT_NEAR(four[k], v, 1e-12);
  }
}

}  // namespace
}  // namespace pt
