#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim/sort.hpp"
#include "support/rng.hpp"

namespace pt::sim {
namespace {

TEST(Machine, LogHelpers) {
  EXPECT_EQ(ceilLog2(1), 0);
  EXPECT_EQ(ceilLog2(2), 1);
  EXPECT_EQ(ceilLog2(3), 2);
  EXPECT_EQ(ceilLog2(1024), 10);
  EXPECT_EQ(ceilLogK(1, 128), 0);
  EXPECT_EQ(ceilLogK(128, 128), 1);
  EXPECT_EQ(ceilLogK(129, 128), 2);
  // Paper: "at most three stages are required up to 2M processes" (k=128).
  EXPECT_LE(ceilLogK(2'000'000, 128), 3);
  EXPECT_EQ(ceilLogK(114'688, 128), 3);
}

TEST(SimComm, AllreduceAndScan) {
  SimComm comm(6, Machine::loopback());
  PerRank<int> vals{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(comm.allreduceSum(vals), 21);
  EXPECT_EQ(comm.allreduceMax(vals), 6);
  auto pre = comm.exscan(vals);
  EXPECT_EQ(pre[0], 0);
  EXPECT_EQ(pre[5], 15);
  EXPECT_GT(comm.stats().collectives, 0);
  EXPECT_GT(comm.time(), 0.0);
}

TEST(SimComm, BcastDeliversEverywhere) {
  SimComm comm(4, Machine::loopback());
  auto got = comm.bcast(std::string("hello"), 0);
  for (const auto& s : got) EXPECT_EQ(s, "hello");
}

TEST(SimComm, BcastRejectsNonZeroRoot) {
  // bcast(value, root) only holds rank 0's copy, so a non-zero root would
  // silently broadcast the wrong rank's data; it must hard-fail instead.
  SimComm comm(4, Machine::loopback());
  EXPECT_THROW(comm.bcast(std::string("hello"), 2), CheckError);
}

TEST(SimComm, BcastFromHonorsRoot) {
  SimComm comm(4, Machine::loopback());
  PerRank<int> vals{10, 20, 30, 40};
  for (int root = 0; root < 4; ++root) {
    auto got = comm.bcastFrom(vals, root);
    ASSERT_EQ(got.size(), 4u);
    for (int v : got) EXPECT_EQ(v, vals[root]);
  }
  EXPECT_THROW(comm.bcastFrom(vals, 4), CheckError);
  EXPECT_THROW(comm.bcastFrom(vals, -1), CheckError);
}

TEST(SimComm, SparseExchangeDeliversExactPattern) {
  SimComm comm(5, Machine::loopback());
  SparseSends<int> sends(5);
  sends[0].emplace_back(3, std::vector<int>{1, 2, 3});
  sends[2].emplace_back(3, std::vector<int>{9});
  sends[4].emplace_back(0, std::vector<int>{7, 7});
  auto recv = comm.sparseExchange(sends);
  ASSERT_EQ(recv[3].size(), 2u);
  EXPECT_EQ(recv[3][0].first, 0);  // sorted by source
  EXPECT_EQ(recv[3][0].second, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(recv[3][1].first, 2);
  ASSERT_EQ(recv[0].size(), 1u);
  EXPECT_EQ(recv[0][0].first, 4);
  EXPECT_TRUE(recv[1].empty());
  EXPECT_EQ(comm.stats().messages, 3);
}

TEST(SimComm, NbxCheaperThanDenseAlltoallAtScale) {
  // The paper's Sec II-C3c observation: with a sparse pattern, the dense
  // MPI_Alltoall blows up with p while NBX stays flat.
  auto cost = [](int p, SimComm::ExchangeAlgo algo) {
    SimComm comm(p, Machine::frontera());
    SparseSends<int> sends(p);
    // Each rank talks to ~8 neighbors (high SFC locality).
    for (int r = 0; r < p; ++r)
      for (int j = 1; j <= 8; ++j)
        sends[r].emplace_back((r + j) % p, std::vector<int>(64, r));
    comm.sparseExchange(sends, algo);
    return comm.time();
  };
  const double nbxSmall = cost(64, SimComm::ExchangeAlgo::kNbx);
  const double nbxBig = cost(2048, SimComm::ExchangeAlgo::kNbx);
  const double denseSmall = cost(64, SimComm::ExchangeAlgo::kDenseAlltoall);
  const double denseBig = cost(2048, SimComm::ExchangeAlgo::kDenseAlltoall);
  // NBX grows only logarithmically; dense grows ~linearly in p.
  EXPECT_LT(nbxBig / nbxSmall, 3.0);
  EXPECT_GT(denseBig / denseSmall, 8.0);
  EXPECT_LT(nbxBig, denseBig);
}

TEST(SimComm, NbxChargePinnedForKnownTopology) {
  // Regression pin of the audited NBX charge (DESIGN.md §15): per rank
  //   alpha * (nDest + nSrc + 2*ceilLog2(p)) + beta * (sent + received B).
  // Both the messages a rank issues and the ones it sinks cost latency;
  // the 2*log2(p) term is the NBX termination (IBarrier) detection.
  Machine m;
  m.alpha = 1e-6;
  m.beta = 1e-9;

  {
    // Symmetric ring on p=4: every rank sends 16 doubles to its successor.
    SimComm comm(4, m);
    SparseSends<double> sends(4);
    for (int r = 0; r < 4; ++r)
      sends[r].emplace_back((r + 1) % 4, std::vector<double>(16, 1.0));
    comm.sparseExchange(sends);
    const double expected =
        m.alpha * (1 + 1 + 2 * ceilLog2(4)) + m.beta * (128.0 + 128.0);
    EXPECT_DOUBLE_EQ(comm.time(), expected);
  }
  {
    // Asymmetric fan-out on p=4: rank 0 sends 8 doubles to each other
    // rank; the epoch completes at the busiest rank (the root).
    SimComm comm(4, m);
    SparseSends<double> sends(4);
    for (int dst = 1; dst < 4; ++dst)
      sends[0].emplace_back(dst, std::vector<double>(8, 2.0));
    comm.sparseExchange(sends);
    const double root = m.alpha * (3 + 0 + 2 * ceilLog2(4)) + m.beta * 192.0;
    const double leaf = m.alpha * (0 + 1 + 2 * ceilLog2(4)) + m.beta * 64.0;
    EXPECT_GT(root, leaf);
    EXPECT_DOUBLE_EQ(comm.time(), root);
  }
}

TEST(SimComm, AlltoallvConcatenatesInRankOrder) {
  SimComm comm(3, Machine::loopback());
  PerRank<std::vector<std::vector<int>>> sendTo(
      3, std::vector<std::vector<int>>(3));
  sendTo[0][2] = {1};
  sendTo[1][2] = {2, 2};
  sendTo[2][2] = {3};
  sendTo[2][0] = {5};
  auto recv = comm.alltoallv(sendTo, /*staged=*/false);
  EXPECT_EQ(recv[2], (std::vector<int>{1, 2, 2, 3}));
  EXPECT_EQ(recv[0], (std::vector<int>{5}));
  EXPECT_TRUE(recv[1].empty());
}

TEST(SimComm, StagedAlltoallvSameDataDifferentCost) {
  auto run = [](bool staged) {
    SimComm comm(256, Machine::frontera());
    PerRank<std::vector<std::vector<int>>> sendTo(
        256, std::vector<std::vector<int>>(256));
    for (int r = 0; r < 256; ++r) sendTo[r][(r + 1) % 256] = {r};
    auto recv = comm.alltoallv(sendTo, staged);
    return std::make_pair(recv, comm.time());
  };
  auto [flatData, flatTime] = run(false);
  auto [stagedData, stagedTime] = run(true);
  EXPECT_EQ(flatData, stagedData);
  // Sparse traffic: staged avoids the O(p) latency term.
  EXPECT_LT(stagedTime, flatTime);
}

TEST(SimComm, KwayHierarchyMemoized) {
  SimComm comm(114688, Machine::frontera());
  const auto& h1 = comm.kwayHierarchy(128);
  EXPECT_EQ(h1.groupSize.size(), 3u);  // <=3 stages at 114K ranks, k=128
  const long splits = comm.stats().commSplits;
  EXPECT_GT(splits, 0);
  const double t1 = comm.time();
  const auto& h2 = comm.kwayHierarchy(128);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(comm.stats().commSplits, splits);  // no new splits
  EXPECT_EQ(comm.stats().commSplitHits, 1);
  EXPECT_DOUBLE_EQ(comm.time(), t1);  // memoized call is free
}

TEST(SimComm, BarrierSynchronizesClocks) {
  SimComm comm(3, Machine::loopback());
  comm.charge(1, 5.0);
  comm.barrier();
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(comm.clockOf(r), 5.0);
}

// ---- Distributed sort -------------------------------------------------------

struct SortCase {
  int ranks;
  SortAlgo algo;
  int n;
  unsigned seed;
};

class DistSortP : public ::testing::TestWithParam<SortCase> {};

TEST_P(DistSortP, SortsGlobally) {
  const auto& c = GetParam();
  SimComm comm(c.ranks, Machine::loopback());
  Rng rng(c.seed);
  PerRank<std::vector<long>> data(c.ranks);
  std::vector<long> all;
  for (int r = 0; r < c.ranks; ++r) {
    const int n = static_cast<int>(rng.uniformInt(0, c.n));
    for (int i = 0; i < n; ++i) {
      data[r].push_back(rng.uniformInt(-1000000, 1000000));
      all.push_back(data[r].back());
    }
  }
  distributedSort(comm, data, std::less<long>{}, c.algo);
  std::vector<long> got;
  for (int r = 0; r < c.ranks; ++r) {
    EXPECT_TRUE(std::is_sorted(data[r].begin(), data[r].end()));
    if (!got.empty() && !data[r].empty()) {
      EXPECT_LE(got.back(), data[r].front());
    }
    got.insert(got.end(), data[r].begin(), data[r].end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(got, all);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DistSortP,
    ::testing::Values(SortCase{1, SortAlgo::kKway, 100, 1},
                      SortCase{4, SortAlgo::kKway, 200, 2},
                      SortCase{4, SortAlgo::kFlat, 200, 3},
                      SortCase{9, SortAlgo::kKway, 500, 4},
                      SortCase{9, SortAlgo::kFlat, 500, 5},
                      SortCase{16, SortAlgo::kKway, 50, 6},
                      SortCase{3, SortAlgo::kKway, 0, 7}));

TEST(DistSort, AdversarialAllEqualKeys) {
  SimComm comm(6, Machine::loopback());
  PerRank<std::vector<int>> data(6, std::vector<int>(100, 7));
  distributedSort(comm, data, std::less<int>{});
  std::size_t total = 0;
  for (const auto& d : data) total += d.size();
  EXPECT_EQ(total, 600u);
}

TEST(DistSort, AlreadySortedSkewedInput) {
  SimComm comm(5, Machine::loopback());
  PerRank<std::vector<int>> data(5);
  for (int i = 0; i < 1000; ++i) data[0].push_back(i);  // all on rank 0
  distributedSort(comm, data, std::less<int>{});
  std::vector<int> got;
  for (const auto& d : data) got.insert(got.end(), d.begin(), d.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(got[i], i);
  // Sample-sort should have spread the data around somewhat.
  EXPECT_LT(data[0].size(), 1000u);
}

TEST(Rebalance, EqualCountsPreserveOrder) {
  SimComm comm(4, Machine::loopback());
  PerRank<std::vector<int>> data(4);
  for (int i = 0; i < 103; ++i) data[i % 2].push_back(i);
  // Make globally ordered first.
  distributedSort(comm, data, std::less<int>{});
  rebalanceEqual(comm, data);
  std::vector<int> got;
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(static_cast<double>(data[r].size()), 103.0 / 4, 2.0);
    got.insert(got.end(), data[r].begin(), data[r].end());
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), 103u);
}

TEST(Rebalance, WeightedSplitsHeavyItems) {
  SimComm comm(4, Machine::loopback());
  PerRank<std::vector<int>> data(4);
  // Items 0..99 on rank 0; weight of item i is 1 except item 0 has 100.
  for (int i = 0; i < 100; ++i) data[0].push_back(i);
  rebalanceByWeight(comm, data,
                    [](int v) { return v == 0 ? 100.0 : 1.0; });
  // The rank holding the heavy item should hold few items in total.
  int heavyRank = -1;
  for (int r = 0; r < 4; ++r)
    if (!data[r].empty() && data[r][0] == 0) heavyRank = r;
  ASSERT_GE(heavyRank, 0);
  EXPECT_LT(data[heavyRank].size(), 20u);
  std::vector<int> got;
  for (int r = 0; r < 4; ++r)
    got.insert(got.end(), data[r].begin(), data[r].end());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), 100u);
}

TEST(DistSort, KwayCheaperThanFlatAtScale) {
  // Modeled-cost comparison backing the paper's Sec II-C3a redesign.
  auto cost = [](int p, SortAlgo algo) {
    SimComm comm(p, Machine::frontera());
    PerRank<std::vector<long>> data(p);
    Rng rng(5);
    for (int r = 0; r < p; ++r)
      for (int i = 0; i < 64; ++i) data[r].push_back(rng.uniformInt(0, 1 << 30));
    distributedSort(comm, data, std::less<long>{}, algo);
    return comm.time();
  };
  EXPECT_LT(cost(1024, SortAlgo::kKway), cost(1024, SortAlgo::kFlat));
}

}  // namespace
}  // namespace pt::sim
