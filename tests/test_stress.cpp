// Randomized stress sweeps over the meshing pipeline: many seeds, many
// rank counts, chained refine/coarsen/balance/remesh operations — the
// invariants must hold at every step. These catch interaction bugs the
// per-module tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "amr/remesh.hpp"
#include "intergrid/transfer.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

template <int DIM>
OctList<DIM> randomTree(Rng& rng, Level maxLevel, Real prob) {
  OctList<DIM> out;
  std::function<void(const Octant<DIM>&)> rec = [&](const Octant<DIM>& o) {
    if (o.level < maxLevel && rng.bernoulli(prob)) {
      for (int c = 0; c < kNumChildren<DIM>; ++c) rec(o.child(c));
    } else {
      out.push_back(o);
    }
  };
  rec(Octant<DIM>::root());
  return out;
}

class StressP : public ::testing::TestWithParam<unsigned> {};

TEST_P(StressP, ChainedRemeshKeepsAllInvariants) {
  const unsigned seed = GetParam();
  Rng rng(seed);
  const int p = 1 + static_cast<int>(rng.uniformInt(0, 6));
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, balanceTree(randomTree<2>(rng, 5, 0.5)));
  for (int round = 0; round < 4; ++round) {
    sim::PerRank<std::vector<Level>> want(p);
    for (int r = 0; r < p; ++r) {
      const auto& elems = dt.localOf(r);
      want[r].resize(elems.size());
      for (std::size_t e = 0; e < elems.size(); ++e) {
        const int delta = static_cast<int>(rng.uniformInt(-3, 3));
        want[r][e] = static_cast<Level>(
            std::min<int>(7, std::max<int>(1, elems[e].level + delta)));
      }
    }
    dt = remesh(dt, want);
    ASSERT_TRUE(dt.globallyLinear()) << "seed " << seed << " round " << round;
    auto leaves = dt.gather();
    ASSERT_TRUE(isBalanced(leaves)) << "seed " << seed << " round " << round;
    ASSERT_NEAR(coveredVolume(leaves), 1.0, 1e-12);
  }
}

TEST_P(StressP, MeshBuildAndLinearExactnessAfterRandomRemesh) {
  const unsigned seed = GetParam();
  Rng rng(seed + 1000);
  const int p = 1 + static_cast<int>(rng.uniformInt(0, 4));
  sim::SimComm comm(p, sim::Machine::loopback());
  auto dt =
      DistTree<2>::fromGlobal(comm, balanceTree(randomTree<2>(rng, 6, 0.45)));
  auto mesh = Mesh<2>::build(comm, dt);
  Field u = mesh.makeField(1);
  fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = 2 * x[0] - 3 * x[1] + 0.7;
  });
  constexpr int kC = 4;
  Real uLoc[kC];
  for (int r = 0; r < p; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      fem::gatherElem(rm, e, u[r], 1, uLoc);
      for (int c = 0; c < kC; ++c) {
        const auto x = nodeCoords(cornerKey(rm.elems[e], c));
        ASSERT_NEAR(uLoc[c], 2 * x[0] - 3 * x[1] + 0.7, 1e-12)
            << "seed " << seed;
      }
    }
  }
}

TEST_P(StressP, TransferBetweenRandomMeshesPreservesLinear) {
  const unsigned seed = GetParam();
  Rng rng(seed + 2000);
  const int p = 1 + static_cast<int>(rng.uniformInt(0, 4));
  sim::SimComm comm(p, sim::Machine::loopback());
  auto tA =
      DistTree<2>::fromGlobal(comm, balanceTree(randomTree<2>(rng, 6, 0.45)));
  auto tB =
      DistTree<2>::fromGlobal(comm, balanceTree(randomTree<2>(rng, 6, 0.45)));
  auto mA = Mesh<2>::build(comm, tA);
  auto mB = Mesh<2>::build(comm, tB);
  Field u = mA.makeField(1);
  fem::setByPosition<2>(mA, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = 1 - x[0] + 4 * x[1];
  });
  Field v = intergrid::transferNodal(mA, u, mB, 1);
  for (int r = 0; r < p; ++r) {
    const auto& rm = mB.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const auto x = nodeCoords(rm.nodeKeys[li]);
      ASSERT_NEAR(v[r][li], 1 - x[0] + 4 * x[1], 1e-12) << "seed " << seed;
    }
  }
}

TEST_P(StressP, ThreeDimensionalRemeshInvariants) {
  const unsigned seed = GetParam();
  Rng rng(seed + 3000);
  sim::SimComm comm(3, sim::Machine::loopback());
  auto dt =
      DistTree<3>::fromGlobal(comm, balanceTree(randomTree<3>(rng, 3, 0.5)));
  sim::PerRank<std::vector<Level>> want(3);
  for (int r = 0; r < 3; ++r) {
    const auto& elems = dt.localOf(r);
    want[r].resize(elems.size());
    for (std::size_t e = 0; e < elems.size(); ++e)
      want[r][e] = static_cast<Level>(std::min<int>(
          4, std::max<int>(1,
                           elems[e].level +
                               static_cast<int>(rng.uniformInt(-2, 2)))));
  }
  auto out = remesh(dt, want);
  EXPECT_TRUE(out.globallyLinear());
  auto leaves = out.gather();
  EXPECT_TRUE(isBalanced(leaves));
  EXPECT_NEAR(coveredVolume(leaves), 1.0, 1e-12);
  // Mesh build must succeed and produce exact linear reproduction.
  auto mesh = Mesh<3>::build(comm, out);
  Field u = mesh.makeField(1);
  fem::setByPosition<3>(mesh, u, 1, [](const VecN<3>& x, Real* v) {
    v[0] = x[0] + 2 * x[1] - x[2];
  });
  constexpr int kC = 8;
  Real uLoc[kC];
  for (int r = 0; r < 3; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      fem::gatherElem(rm, e, u[r], 1, uLoc);
      for (int c = 0; c < kC; ++c) {
        const auto x = nodeCoords(cornerKey(rm.elems[e], c));
        ASSERT_NEAR(uLoc[c], x[0] + 2 * x[1] - x[2], 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressP,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

}  // namespace
}  // namespace pt
