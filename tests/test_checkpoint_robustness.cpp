// Checkpoint/restart robustness suite: format-v2 integrity (bounded reads,
// total checksum coverage, atomic writes), rank-count-changing restarts,
// the strict solver-state schema, auto-checkpoint rotation with
// fall-back-past-corrupt recovery, fault injection (file corruption and a
// rank killed mid-campaign), and the distributed invariant validator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "apps/fields.hpp"
#include "chns/checkpoint.hpp"
#include "fem/matvec.hpp"
#include "io/checkpoint.hpp"
#include "octree/balance.hpp"
#include "support/faultinject.hpp"
#include "validate/invariants.hpp"

namespace pt {
namespace {

namespace fs = std::filesystem;

template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        return std::abs(std::sqrt(r2) - 0.3) < 2.0 * o.physSize() ? fine
                                                                  : coarse;
      },
      tree);
  return balanceTree(tree);
}

/// Fresh scratch directory named after the running test.
std::string scratchDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = std::string("/tmp/pt_robust_") + info->test_suite_name() +
                    "_" + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small checkpoint with one nodal field, one cell field, and metadata.
io::Checkpoint<2> smallCheckpoint(int nranks, Level level) {
  sim::SimComm comm(nranks, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(level));
  auto mesh = Mesh<2>::build(comm, dt);
  Field phi = mesh.makeField(1);
  fem::setByPosition<2>(mesh, phi, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(4 * x[0]) * std::cos(2 * x[1]);
  });
  sim::PerRank<std::vector<Real>> cn(nranks);
  for (int r = 0; r < nranks; ++r) {
    cn[r].resize(dt.localOf(r).size());
    for (std::size_t e = 0; e < cn[r].size(); ++e) cn[r][e] = 0.01 * (e % 5);
  }
  auto ck = io::makeCheckpoint<2>(dt, mesh, {{"phi", {&phi, 1}}},
                                  {{"cn", &cn}});
  ck.meta.emplace_back("steps", 42);
  return ck;
}

chns::ChnsOptions<2> campaignOptions() {
  chns::ChnsOptions<2> opt;
  opt.params.Re = 50;
  opt.params.We = 5;
  opt.params.Pe = 50;
  opt.params.Cn = 0.04;
  opt.dt = 2e-3;
  opt.remeshEvery = 0;  // fixed mesh: trajectories bitwise comparable
  return opt;
}

Real dropIc(const VecN<2>& x, Real cn) {
  return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, cn);
}

std::string readAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Format v2 integrity
// ---------------------------------------------------------------------------

TEST(CheckpointV2, RoundTripWithMeta) {
  auto ck = smallCheckpoint(3, 3);
  const std::string dir = scratchDir();
  const std::string path = dir + "/ck.bin";
  io::saveCheckpoint<2>(path, ck);
  auto ck2 = io::loadCheckpointFile<2>(path);
  EXPECT_EQ(ck2.writerRanks, 3);
  ASSERT_EQ(ck2.leaves.size(), ck.leaves.size());
  EXPECT_TRUE(std::equal(ck.leaves.begin(), ck.leaves.end(),
                         ck2.leaves.begin()));
  ASSERT_EQ(ck2.nodal.size(), 1u);
  EXPECT_EQ(ck2.nodal[0].name, "phi");
  EXPECT_EQ(ck2.nodal[0].values, ck.nodal[0].values);
  ASSERT_EQ(ck2.cell.size(), 1u);
  EXPECT_EQ(ck2.cell[0].values, ck.cell[0].values);
  EXPECT_EQ(ck2.metaOr("steps", -1), 42);
  EXPECT_EQ(ck2.metaOr("absent", -7), -7);
  fs::remove_all(dir);
}

TEST(CheckpointV2, RankCountMatrixPreservesCellAlignment) {
  // P_old -> P_new in {4->2, 2->2, 2->5}: per-leaf cell values and nodal
  // values by key must survive bitwise in every direction.
  const std::pair<int, int> cases[] = {{4, 2}, {2, 2}, {2, 5}};
  for (const auto& [pOld, pNew] : cases) {
    SCOPED_TRACE("ranks " + std::to_string(pOld) + " -> " +
                 std::to_string(pNew));
    sim::SimComm commA(pOld, sim::Machine::loopback());
    auto dtA = DistTree<2>::fromGlobal(commA, interfaceTree<2>(2, 4));
    auto meshA = Mesh<2>::build(commA, dtA);
    Field phiA = meshA.makeField(1);
    fem::setByPosition<2>(meshA, phiA, 1, [](const VecN<2>& x, Real* v) {
      v[0] = std::sin(7 * x[0]) + std::cos(5 * x[1]);
    });
    // Tag each leaf with its global index, so alignment errors are visible.
    sim::PerRank<std::vector<Real>> tag(pOld);
    Real id = 0;
    for (int r = 0; r < pOld; ++r) {
      tag[r].resize(dtA.localOf(r).size());
      for (auto& v : tag[r]) v = id++;
    }
    auto ck = io::makeCheckpoint<2>(dtA, meshA, {{"phi", {&phiA, 1}}},
                                    {{"tag", &tag}});
    sim::SimComm commB(pNew, sim::Machine::loopback());
    auto restored = io::restoreCheckpoint<2>(commB, ck, true);
    EXPECT_EQ(restored.activeRanks, std::min(pOld, pNew));
    EXPECT_TRUE(restored.tree.globallyLinear());
    // Every rank holds leaves after the repartition, and the i-th global
    // leaf still carries tag i — the tree is the authoritative layout.
    Real expect = 0;
    for (int r = 0; r < pNew; ++r) {
      EXPECT_FALSE(restored.tree.localOf(r).empty());
      ASSERT_EQ(restored.cell[0].second[r].size(),
                restored.tree.localOf(r).size());
      for (Real v : restored.cell[0].second[r]) EXPECT_EQ(v, expect++);
    }
    EXPECT_EQ(expect, static_cast<Real>(ck.leaves.size()));
    // Nodal values bitwise by key.
    std::map<NodeKey<2>, Real, NodeKeyLess<2>> ref;
    for (int r = 0; r < pOld; ++r) {
      const auto& rm = meshA.rank(r);
      for (std::size_t li = 0; li < rm.nNodes(); ++li)
        ref[rm.nodeKeys[li]] = phiA[r][li];
    }
    for (int r = 0; r < pNew; ++r) {
      const auto& rm = restored.mesh->rank(r);
      for (std::size_t li = 0; li < rm.nNodes(); ++li) {
        auto it = ref.find(rm.nodeKeys[li]);
        ASSERT_TRUE(it != ref.end());
        EXPECT_EQ(restored.nodal[0].second[r][li], it->second);
      }
    }
  }
}

TEST(CheckpointV2, EveryTruncationYieldsTypedError) {
  const std::string dir = scratchDir();
  const std::string path = dir + "/ck.bin";
  io::saveCheckpoint<2>(path, smallCheckpoint(2, 2));
  const std::uint64_t full = support::fileSize(path);
  const std::string intact = readAll(path);
  for (std::uint64_t len = 0; len < full; ++len) {
    std::ofstream(path, std::ios::binary) << intact;  // restore
    support::truncateFileTo(path, len);
    auto lr = io::tryLoadCheckpointFile<2>(path);
    ASSERT_FALSE(lr.status.ok()) << "truncation to " << len << " accepted";
  }
  fs::remove_all(dir);
}

TEST(CheckpointV2, AnySingleBitFlipDetected) {
  // Checksum coverage is total: flipping one bit at ANY byte offset must
  // produce a typed load failure, never a silently-wrong checkpoint.
  const std::string dir = scratchDir();
  const std::string path = dir + "/ck.bin";
  io::saveCheckpoint<2>(path, smallCheckpoint(2, 2));
  const std::uint64_t full = support::fileSize(path);
  const std::string intact = readAll(path);
  for (std::uint64_t off = 0; off < full; ++off) {
    std::ofstream(path, std::ios::binary) << intact;
    support::flipBitInFile(path, off, static_cast<int>(off % 8));
    auto lr = io::tryLoadCheckpointFile<2>(path);
    ASSERT_FALSE(lr.status.ok())
        << "bit flip at byte " << off << " went undetected";
  }
  fs::remove_all(dir);
}

TEST(CheckpointV2, ZeroedSectionDetected) {
  const std::string dir = scratchDir();
  const std::string path = dir + "/ck.bin";
  io::saveCheckpoint<2>(path, smallCheckpoint(2, 3));
  // Zero 64 bytes in the middle of the file (inside some section payload).
  const std::uint64_t full = support::fileSize(path);
  support::zeroRangeInFile(path, full / 2, 64);
  auto lr = io::tryLoadCheckpointFile<2>(path);
  ASSERT_FALSE(lr.status.ok());
  fs::remove_all(dir);
}

TEST(CheckpointV2, V1FilesStillLoad) {
  auto ck = smallCheckpoint(3, 3);
  ck.meta.clear();  // v1 has no metadata section
  const std::string dir = scratchDir();
  const std::string path = dir + "/legacy.bin";
  io::saveCheckpointV1<2>(path, ck);
  auto ck2 = io::loadCheckpointFile<2>(path);
  EXPECT_EQ(ck2.writerRanks, 3);
  ASSERT_EQ(ck2.leaves.size(), ck.leaves.size());
  ASSERT_EQ(ck2.nodal.size(), 1u);
  EXPECT_EQ(ck2.nodal[0].values, ck.nodal[0].values);
  ASSERT_EQ(ck2.cell.size(), 1u);
  EXPECT_EQ(ck2.cell[0].values, ck.cell[0].values);
  EXPECT_TRUE(ck2.meta.empty());
  fs::remove_all(dir);
}

TEST(CheckpointV2, HugeDeclaredCountsAreBoundedNotAllocated) {
  // The historical bug: loadCheckpointFile resized vectors straight from
  // on-disk counts, so a corrupt count meant bad_alloc/OOM. Craft v1 files
  // declaring ~2^60 elements; the loader must return a typed error fast.
  const std::string dir = scratchDir();
  auto w64 = [](std::ofstream& os, std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), 8);
  };
  {  // huge leaf count
    const std::string p = dir + "/huge_leaves.bin";
    std::ofstream os(p, std::ios::binary);
    w64(os, io::kCkMagicV1);
    w64(os, 2);            // DIM
    w64(os, 1);            // writerRanks
    w64(os, 1ull << 60);   // leaf count
    os.close();
    auto lr = io::tryLoadCheckpointFile<2>(p);
    EXPECT_EQ(lr.status.code, io::CkCode::kBadCount);
  }
  {  // huge nodal key count behind a valid (empty) leaves block
    const std::string p = dir + "/huge_nodal.bin";
    std::ofstream os(p, std::ios::binary);
    w64(os, io::kCkMagicV1);
    w64(os, 2);  // DIM
    w64(os, 1);  // writerRanks
    w64(os, 0);  // no leaves
    w64(os, 1);  // one nodal field
    w64(os, 3);
    os.write("phi", 3);
    w64(os, 1);           // ndof
    w64(os, 1ull << 60);  // key count
    os.close();
    auto lr = io::tryLoadCheckpointFile<2>(p);
    EXPECT_EQ(lr.status.code, io::CkCode::kBadCount);
  }
  {  // truncated legacy file: typed error, not bad_alloc
    const std::string p = dir + "/trunc_v1.bin";
    io::saveCheckpointV1<2>(p, smallCheckpoint(2, 2));
    support::truncateFileTo(p, support::fileSize(p) / 3);
    auto lr = io::tryLoadCheckpointFile<2>(p);
    EXPECT_FALSE(lr.status.ok());
  }
  {  // bit-flipped legacy payload: caught by semantic validation
    const std::string p = dir + "/flip_v1.bin";
    auto ck = smallCheckpoint(2, 2);
    ck.meta.clear();
    io::saveCheckpointV1<2>(p, ck);
    // v1 layout: 32-byte header, then per leaf DIM x u64 anchor + u64
    // level. Flip the top bit of leaf[0]'s second anchor word: the value
    // blows far past kMaxCoord, a guaranteed semantic violation.
    support::flipBitInFile(p, 32 + 8 + 7, 7);
    auto lr = io::tryLoadCheckpointFile<2>(p);
    EXPECT_FALSE(lr.status.ok());
  }
  fs::remove_all(dir);
}

TEST(CheckpointV2, SaveIsAtomicAndTypedOnFailure) {
  const std::string dir = scratchDir();
  const std::string path = dir + "/ck.bin";
  auto ck = smallCheckpoint(2, 2);
  // Unwritable destination: typed error, no file appears.
  try {
    io::saveCheckpoint<2>(dir + "/missing-subdir/ck.bin", ck);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_EQ(e.code(), io::CkCode::kOpenFailed);
  }
  EXPECT_FALSE(fs::exists(dir + "/missing-subdir"));
  // Successful save leaves no .tmp behind and the file loads.
  io::saveCheckpoint<2>(path, ck);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_TRUE(io::tryLoadCheckpointFile<2>(path).status.ok());
  // Overwrite keeps the file valid.
  io::saveCheckpoint<2>(path, ck);
  EXPECT_TRUE(io::tryLoadCheckpointFile<2>(path).status.ok());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Strict solver-state schema
// ---------------------------------------------------------------------------

TEST(SolverSchema, RejectsMissingUnknownMisshapenAndDuplicateFields) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(2));
  auto mesh = Mesh<2>::build(comm, dt);
  Field s1 = mesh.makeField(1), s2 = mesh.makeField(1), s3 = mesh.makeField(1);
  Field v = mesh.makeField(2);
  sim::PerRank<std::vector<Real>> cn(2);
  for (int r = 0; r < 2; ++r) cn[r].assign(dt.localOf(r).size(), 0.04);
  auto full = io::makeCheckpoint<2>(
      dt, mesh,
      {{"phi", {&s1, 1}}, {"mu", {&s2, 1}}, {"vel", {&v, 2}}, {"p", {&s3, 1}}},
      {{"cn", &cn}});
  EXPECT_TRUE(chns::solverStateSchema<2>(full).ok());

  {  // missing mu
    auto ck = full;
    ck.nodal.erase(ck.nodal.begin() + 1);
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code, io::CkCode::kMissingField);
  }
  {  // unknown nodal field
    auto ck = full;
    auto junk = ck.nodal[0];
    junk.name = "junk";
    ck.nodal.push_back(junk);
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code, io::CkCode::kUnknownField);
  }
  {  // wrong component count on vel
    auto ck = io::makeCheckpoint<2>(
        dt, mesh,
        {{"phi", {&s1, 1}}, {"mu", {&s2, 1}}, {"vel", {&s3, 1}},
         {"p", {&s3, 1}}},
        {{"cn", &cn}});
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code,
              io::CkCode::kFieldShapeMismatch);
  }
  {  // duplicate field
    auto ck = full;
    ck.nodal.push_back(ck.nodal[0]);
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code,
              io::CkCode::kInvalidContent);
  }
  {  // missing cell field
    auto ck = full;
    ck.cell.clear();
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code, io::CkCode::kMissingField);
  }
  {  // unknown cell field
    auto ck = full;
    ck.cell[0].name = "mystery";
    EXPECT_EQ(chns::solverStateSchema<2>(ck).code, io::CkCode::kUnknownField);
  }
  // restoreSolverState surfaces the schema error as a typed exception.
  {
    auto ck = full;
    ck.nodal.erase(ck.nodal.begin());
    try {
      chns::restoreSolverState<2>(comm, ck, campaignOptions());
      FAIL() << "expected CheckpointError";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.code(), io::CkCode::kMissingField);
    }
  }
}

// ---------------------------------------------------------------------------
// Auto-checkpoint rotation + recovery
// ---------------------------------------------------------------------------

TEST(AutoCheckpoint, RotationKeepsNewestN) {
  const std::string dir = scratchDir();
  sim::SimComm comm(2, sim::Machine::loopback());
  auto opt = campaignOptions();
  chns::ChnsSolver<2> s(comm, DistTree<2>::fromGlobal(comm, uniformTree<2>(3)),
                        opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return dropIc(x, opt.params.Cn);
  });
  chns::enableAutoCheckpoint(s, dir, /*every=*/1, /*keep=*/2);
  for (int i = 0; i < 5; ++i) s.step();
  auto files = chns::listCheckpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].first, 4);
  EXPECT_EQ(files[1].first, 5);
  // The newest file records its step count and loads cleanly.
  auto ck = io::loadCheckpointFile<2>(files[1].second);
  EXPECT_EQ(ck.metaOr("steps", -1), 5);
  EXPECT_TRUE(chns::solverStateSchema<2>(ck).ok());
  fs::remove_all(dir);
}

TEST(AutoCheckpoint, ResumeFallsBackPastCorruptNewest) {
  const std::string dir = scratchDir();
  auto opt = campaignOptions();
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ChnsSolver<2> s(comm,
                          DistTree<2>::fromGlobal(comm, uniformTree<2>(3)),
                          opt);
    s.setInitialCondition([&](const VecN<2>& x) {
      return dropIc(x, opt.params.Cn);
    });
    chns::enableAutoCheckpoint(s, dir, 1, 3);
    for (int i = 0; i < 3; ++i) s.step();
  }
  auto files = chns::listCheckpoints(dir);
  ASSERT_EQ(files.size(), 3u);
  // Corrupt the newest checkpoint; resume must fall back to step 2.
  support::flipBitInFile(files[2].second,
                         support::fileSize(files[2].second) / 2, 3);
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ResumeInfo info;
    auto s = chns::resumeFromLatestValid<2>(comm, dir, opt, &info);
    EXPECT_EQ(info.step, 2);
    EXPECT_EQ(info.skippedCorrupt, 1);
    EXPECT_EQ(s.stepsTaken(), 2);
  }
  // Corrupt everything: typed kNoValidCheckpoint, no crash.
  for (const auto& [step, path] : files)
    support::truncateFileTo(path, support::fileSize(path) / 2);
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    try {
      chns::resumeFromLatestValid<2>(comm, dir, opt);
      FAIL() << "expected CheckpointError";
    } catch (const io::CheckpointError& e) {
      EXPECT_EQ(e.code(), io::CkCode::kNoValidCheckpoint);
    }
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, ScheduledRankFailureFiresOnceAtCountdown) {
  sim::SimComm comm(3, sim::Machine::loopback());
  comm.scheduleRankFailure(/*rank=*/1, /*afterCollectives=*/2);
  sim::PerRank<int> ones(3, 1);
  EXPECT_EQ(comm.allreduceSum(ones), 3);  // collective 1
  EXPECT_EQ(comm.allreduceSum(ones), 3);  // collective 2
  try {
    comm.allreduceSum(ones);  // collective 3: the fault fires
    FAIL() << "expected RankKilled";
  } catch (const sim::RankKilled& e) {
    EXPECT_EQ(e.rank(), 1);
  }
  // Fires once, then disarms: the communicator is usable again.
  EXPECT_FALSE(comm.failureArmed());
  EXPECT_EQ(comm.allreduceSum(ones), 3);
  // Cancel works too.
  comm.scheduleRankFailure(0, 0);
  comm.cancelScheduledFailure();
  EXPECT_EQ(comm.allreduceSum(ones), 3);
}

TEST(FaultInjection, KilledRankMidCampaignRestoresBitwiseHistory) {
  // The flagship end-to-end: a rank dies mid-step; the campaign resumes
  // from the latest checkpoint on a fresh communicator and must reproduce
  // the exact history a fault-free restart from the same checkpoint
  // produces — bitwise, field value for field value.
  auto opt = campaignOptions();
  auto ic = [&](const VecN<2>& x) { return dropIc(x, opt.params.Cn); };
  const int ckEvery = 2, totalSteps = 6, faultAfter = 4;

  // Reference: run 4 steps, checkpoint, restore (no fault), finish to 6.
  const std::string dirA = scratchDir();
  std::map<NodeKey<2>, Real, NodeKeyLess<2>> refPhi;
  Real refMass = 0, refEnergy = 0;
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ChnsSolver<2> s(comm,
                          DistTree<2>::fromGlobal(comm, uniformTree<2>(4)),
                          opt);
    s.setInitialCondition(ic);
    chns::enableAutoCheckpoint(s, dirA, ckEvery, 2);
    for (int i = 0; i < faultAfter; ++i) s.step();
  }
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    auto s = chns::resumeFromLatestValid<2>(comm, dirA, opt);
    EXPECT_EQ(s.stepsTaken(), faultAfter);
    while (s.stepsTaken() < totalSteps) s.step();
    refMass = s.phiIntegral();
    refEnergy = s.freeEnergy();
    for (int r = 0; r < 2; ++r) {
      const auto& rm = s.mesh().rank(r);
      for (std::size_t li = 0; li < rm.nNodes(); ++li)
        refPhi[rm.nodeKeys[li]] = s.phi()[r][li];
    }
  }

  // Faulted campaign: identical run, but rank 1 dies during step 5.
  const std::string dirB = scratchDir();
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ChnsSolver<2> s(comm,
                          DistTree<2>::fromGlobal(comm, uniformTree<2>(4)),
                          opt);
    s.setInitialCondition(ic);
    chns::enableAutoCheckpoint(s, dirB, ckEvery, 2);
    for (int i = 0; i < faultAfter; ++i) s.step();
    comm.scheduleRankFailure(/*rank=*/1, /*afterCollectives=*/5);
    EXPECT_THROW(s.step(), sim::RankKilled);
    // The job is dead; the solver object is abandoned with it.
  }
  // Determinism check: both campaigns wrote identical step-4 checkpoints.
  EXPECT_EQ(readAll(dirA + "/" + chns::checkpointFileName(faultAfter)),
            readAll(dirB + "/" + chns::checkpointFileName(faultAfter)));
  {
    // Recovery on a fresh communicator (the relaunched job).
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ResumeInfo info;
    auto s = chns::resumeFromLatestValid<2>(comm, dirB, opt, &info);
    EXPECT_EQ(info.step, faultAfter);
    EXPECT_EQ(info.skippedCorrupt, 0);
    while (s.stepsTaken() < totalSteps) s.step();
    // Bitwise-identical history: diagnostics and every phi value by key.
    EXPECT_EQ(s.phiIntegral(), refMass);
    EXPECT_EQ(s.freeEnergy(), refEnergy);
    std::size_t checked = 0;
    for (int r = 0; r < 2; ++r) {
      const auto& rm = s.mesh().rank(r);
      for (std::size_t li = 0; li < rm.nNodes(); ++li) {
        auto it = refPhi.find(rm.nodeKeys[li]);
        ASSERT_TRUE(it != refPhi.end());
        EXPECT_EQ(s.phi()[r][li], it->second);  // bitwise
        ++checked;
      }
    }
    EXPECT_GT(checked, 0u);
  }
  fs::remove_all(dirA);
  fs::remove_all(dirB);
}

// ---------------------------------------------------------------------------
// Invariant validator
// ---------------------------------------------------------------------------

TEST(Validator, PassesOnCleanBuildAndSolver) {
  sim::SimComm comm(3, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 4));
  auto mesh = Mesh<2>::build(comm, dt);
  auto rep = validate::checkAll(dt, mesh);
  EXPECT_TRUE(rep.ok()) << rep.str();
  Field phi = mesh.makeField(1);
  validate::checkNodalField(mesh, phi, 1, "phi", rep,
                            /*requireConsistent=*/true);
  sim::PerRank<std::vector<Real>> cn(3);
  for (int r = 0; r < 3; ++r) cn[r].assign(dt.localOf(r).size(), 0.04);
  validate::checkCellField(dt, cn, "cn", rep);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_NO_THROW(validate::enforce(rep, "clean build"));

  // The solver's one-call hook.
  auto opt = campaignOptions();
  chns::ChnsSolver<2> s(comm, DistTree<2>::fromGlobal(comm, uniformTree<2>(3)),
                        opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return dropIc(x, opt.params.Cn);
  });
  EXPECT_NO_THROW(s.validateNow("fresh solver"));
  s.step();
  EXPECT_NO_THROW(s.validateNow("after one step"));
}

TEST(Validator, DetectsBrokenInvariants) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 4));
  auto mesh = Mesh<2>::build(comm, dt);
  {  // unsorted local leaves
    auto broken = dt;
    ASSERT_GE(broken.localOf(0).size(), 2u);
    std::swap(broken.localOf(0)[0], broken.localOf(0)[1]);
    validate::Report rep;
    validate::checkTree(broken, rep);
    EXPECT_FALSE(rep.ok());
    EXPECT_THROW(validate::enforce(rep, "broken tree"), CheckError);
  }
  {  // coverage gap
    auto broken = dt;
    ASSERT_FALSE(broken.localOf(1).empty());
    broken.localOf(1).pop_back();
    validate::Report rep;
    validate::checkTree(broken, rep);
    EXPECT_FALSE(rep.ok());
  }
  {  // corrupted node ownership
    auto meshB = Mesh<2>::build(comm, dt);
    meshB.rank(0).nodeOwner[0] = 1;  // not the min sharer / wrong rank
    validate::Report rep;
    validate::checkMesh(meshB, rep);
    EXPECT_FALSE(rep.ok());
  }
  {  // mesh/tree misalignment
    auto broken = dt;
    broken.localOf(0).pop_back();
    validate::Report rep;
    validate::checkMeshTreeAlignment(mesh, broken, rep);
    EXPECT_FALSE(rep.ok());
  }
  {  // non-finite field value
    Field phi = mesh.makeField(1);
    phi[0][0] = std::numeric_limits<Real>::quiet_NaN();
    validate::Report rep;
    validate::checkNodalField(mesh, phi, 1, "phi", rep);
    EXPECT_FALSE(rep.ok());
  }
  {  // ghost copy disagreeing with the owner
    Field phi = mesh.makeField(1);
    bool bumped = false;
    for (int r = 0; r < 2 && !bumped; ++r)
      for (std::size_t li = 0; li < mesh.rank(r).nNodes() && !bumped; ++li)
        if (mesh.rank(r).nodeOwner[li] != r) {
          phi[r][li] = 1.0;  // ghost differs from owner's 0.0
          bumped = true;
        }
    ASSERT_TRUE(bumped);
    validate::Report rep;
    validate::checkNodalField(mesh, phi, 1, "phi", rep,
                              /*requireConsistent=*/true);
    EXPECT_FALSE(rep.ok());
  }
  {  // cell field misaligned with the leaves
    sim::PerRank<std::vector<Real>> cn(2);
    cn[0].assign(dt.localOf(0).size() + 1, 0.0);
    cn[1].assign(dt.localOf(1).size(), 0.0);
    validate::Report rep;
    validate::checkCellField(dt, cn, "cn", rep);
    EXPECT_FALSE(rep.ok());
  }
}

}  // namespace
}  // namespace pt
