// Kernel-variant equivalence tests for the SIMD microkernels behind the
// batched MATVEC engine (fem/simd.hpp, DESIGN.md §8): tier agreement to
// roundoff on randomized adaptive meshes (hanging nodes, tail batches,
// ndof 1..5), bitwise contracts (scalar tier vs the historical operation
// order, fixed-tier determinism across thread counts), misaligned panels,
// and the PT_SIMD runtime-dispatch override.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include "fem/matvec.hpp"
#include "fem/matvec_batched.hpp"
#include "fem/simd.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/buildinfo.hpp"
#include "support/thread_pool.hpp"

namespace pt {
namespace {

/// Balanced adaptive tree refined around a spherical interface — level
/// jumps guarantee hanging corners, and batch runs of non-multiple-of-32
/// length guarantee tail batches.
template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        const Real dist = std::abs(std::sqrt(r2) - 0.3);
        return dist < 2.0 * o.physSize() ? fine : coarse;
      },
      tree);
  return balanceTree(tree);
}

template <int DIM>
Mesh<DIM> makeMesh(sim::SimComm& comm, Level coarse, Level fine) {
  auto dt = DistTree<DIM>::fromGlobal(comm, interfaceTree<DIM>(coarse, fine));
  return Mesh<DIM>::build(comm, dt);
}

template <int DIM>
Field randomInput(const Mesh<DIM>& mesh, int ndof, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  Field x = mesh.makeField(ndof);
  // Random but ghost-consistent: a pure function of the global node key.
  fem::setByPosition<DIM>(mesh, x, ndof,
                          [ndof](const VecN<DIM>& pos, Real* out) {
                            Real s = 0;
                            for (int d = 0; d < DIM; ++d)
                              s += (127.1 + 184.6 * d) * pos[d];
                            for (int d = 0; d < ndof; ++d) {
                              const Real h =
                                  std::sin(s + 0.7 * d) * 43758.5453;
                              out[d] = h - std::floor(h) - 0.5;
                            }
                          });
  (void)gen;
  (void)dist;
  return x;
}

Real maxAbs(const Field& f) {
  Real m = 0;
  for (const auto& v : f)
    for (Real x : v) m = std::max(m, std::abs(x));
  return m;
}

Real maxDiff(const Field& a, const Field& b) {
  Real m = 0;
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].size(), b[r].size());
    for (std::size_t i = 0; i < a[r].size(); ++i)
      m = std::max(m, std::abs(a[r][i] - b[r][i]));
  }
  return m;
}

/// Tiers available on this machine (always includes scalar).
std::vector<fem::SimdIsa> availableTiers() {
  std::vector<fem::SimdIsa> tiers{fem::SimdIsa::kScalar};
  const int detected = support::simdTier();
  if (detected >= 1) tiers.push_back(fem::SimdIsa::kAvx2);
  if (detected >= 2) tiers.push_back(fem::SimdIsa::kAvx512);
  return tiers;
}

// ---- Runtime dispatch (PT_SIMD override) ------------------------------------

TEST(SimdDispatch, EnvOverrideClampsDownOnly) {
  const int detected = [] {
    unsetenv("PT_SIMD");
    support::simdRefresh();
    return support::simdTier();
  }();

  setenv("PT_SIMD", "scalar", 1);
  support::simdRefresh();
  EXPECT_EQ(support::simdTier(), 0);
  EXPECT_EQ(fem::simdIsa(), fem::SimdIsa::kScalar);
  EXPECT_STREQ(support::simdIsaName(), "scalar");

  // Requesting a tier at or above detection keeps detection (never up).
  setenv("PT_SIMD", "avx512", 1);
  support::simdRefresh();
  EXPECT_EQ(support::simdTier(), detected <= 2 ? detected : 2);

  // Unknown values keep runtime detection.
  setenv("PT_SIMD", "neon", 1);
  support::simdRefresh();
  EXPECT_EQ(support::simdTier(), detected);

  unsetenv("PT_SIMD");
  support::simdRefresh();
  EXPECT_EQ(support::simdTier(), detected);
}

// ---- Panel GEMM microkernel -------------------------------------------------

/// Scalar tier reproduces the historical operation order bit-for-bit:
/// per output row, the first rank-1 term stores and the rest accumulate.
TEST(SimdKernels, PanelGemmScalarBitwiseHistorical) {
  constexpr int kN = 8;
  const int cols = 37;  // deliberately not a multiple of kPanelPad
  const int colsPad = fem::padCols(cols);
  std::mt19937 gen(42);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  std::vector<Real> A(kN * kN);
  for (Real& v : A) v = dist(gen);
  fem::PanelBuf xb, yb;
  Real* X = xb.ensure(std::size_t(kN) * colsPad);
  Real* Y = yb.ensure(std::size_t(kN) * colsPad);
  for (int i = 0; i < kN * colsPad; ++i) X[i] = dist(gen);

  std::vector<Real> ref(std::size_t(kN) * colsPad, 0.0);
  for (int i = 0; i < kN; ++i) {
    for (int c = 0; c < cols; ++c) ref[i * colsPad + c] = A[i * kN] * X[c];
    for (int j = 1; j < kN; ++j)
      for (int c = 0; c < cols; ++c)
        ref[i * colsPad + c] += A[i * kN + j] * X[j * colsPad + c];
  }
  fem::panelGemm(fem::SimdIsa::kScalar, A.data(), kN, X, Y, cols, colsPad);
  for (int i = 0; i < kN; ++i)
    for (int c = 0; c < cols; ++c)
      EXPECT_EQ(Y[i * colsPad + c], ref[i * colsPad + c]);
}

/// Vector tiers agree with scalar to roundoff, including on panels whose
/// base pointer is deliberately knocked off the 64-byte allocation
/// alignment (the kernels use unaligned loads throughout).
TEST(SimdKernels, PanelGemmTiersAgreeAndTolerateMisalignment) {
  for (int kN : {4, 8, 9, 27}) {  // 2D/3D corners + p=2 tensor sizes
    const int cols = 37;
    const int colsPad = fem::padCols(cols);
    std::mt19937 gen(7 + kN);
    std::uniform_real_distribution<Real> dist(-1.0, 1.0);
    std::vector<Real> A(std::size_t(kN) * kN);
    for (Real& v : A) v = dist(gen);
    fem::PanelBuf xb, yb, yb2, yb3;
    // One extra Real so X + 1 stays in bounds when testing misalignment.
    Real* X = xb.ensure(std::size_t(kN) * colsPad + 1);
    Real* Y = yb.ensure(std::size_t(kN) * colsPad + 1);
    Real* Y2 = yb2.ensure(std::size_t(kN) * colsPad + 1);
    Real* Ym = yb3.ensure(std::size_t(kN) * colsPad + 1);
    for (int i = 0; i < kN * colsPad + 1; ++i) X[i] = dist(gen);

    fem::panelGemm(fem::SimdIsa::kScalar, A.data(), kN, X, Y, cols, colsPad);
    // Scalar baseline on the misaligned input view, kept separate from Y.
    fem::panelGemm(fem::SimdIsa::kScalar, A.data(), kN, X + 1, Ym, cols,
                   colsPad);
    for (fem::SimdIsa isa : availableTiers()) {
      if (isa == fem::SimdIsa::kScalar) continue;
      // Aligned panels.
      fem::panelGemm(isa, A.data(), kN, X, Y2, cols, colsPad);
      Real scale = 1, diff = 0;
      for (int i = 0; i < kN; ++i)
        for (int c = 0; c < cols; ++c) {
          scale = std::max(scale, std::abs(Y[i * colsPad + c]));
          diff = std::max(diff,
                          std::abs(Y2[i * colsPad + c] - Y[i * colsPad + c]));
        }
      EXPECT_LE(diff / scale, 1e-13) << "kN=" << kN << " aligned";
      // Misaligned base pointers (offset by one Real = 8 bytes).
      fem::panelGemm(isa, A.data(), kN, X + 1, Y2 + 1, cols, colsPad);
      diff = 0;
      for (int i = 0; i < kN; ++i)
        for (int c = 0; c < cols; ++c)
          diff = std::max(
              diff, std::abs((Y2 + 1)[i * colsPad + c] - Ym[i * colsPad + c]));
      EXPECT_LE(diff / scale, 1e-13) << "kN=" << kN << " misaligned";
    }
  }
}

// ---- Gather / scatter -------------------------------------------------------

TEST(SimdKernels, GatherScatterRoundTrip) {
  constexpr int kN = 8;
  for (int ndof : {1, 2, 3, 4, 5, 7}) {  // 7 exercises the generic path
    const int m = 13;  // tail-batch-sized
    const int cols = m * ndof;
    const int colsPad = fem::padCols(cols);
    std::mt19937 gen(100 + ndof);
    std::uniform_real_distribution<Real> dist(-1.0, 1.0);
    const std::size_t nNodes = 40;
    std::vector<Real> x(nNodes * ndof);
    for (Real& v : x) v = dist(gen);
    std::uniform_int_distribution<std::uint32_t> node(0, nNodes - 1);
    std::vector<std::uint32_t> nodes(std::size_t(m) * kN);
    for (auto& n : nodes) n = node(gen);
    std::vector<std::uint32_t> nodesT(nodes.size());
    for (int ei = 0; ei < m; ++ei)
      for (int j = 0; j < kN; ++j)
        nodesT[std::size_t(j) * m + ei] = nodes[std::size_t(ei) * kN + j];

    fem::PanelBuf xb;
    Real* X = xb.ensure(std::size_t(kN) * colsPad);
    for (std::size_t i = 0; i < std::size_t(kN) * colsPad; ++i)
      X[i] = 99.0;  // poison: gather must overwrite live cols, zero pads
    fem::gatherPanelT(x.data(), nodesT.data(), kN, m, ndof, colsPad, X);
    for (int j = 0; j < kN; ++j) {
      for (int ei = 0; ei < m; ++ei)
        for (int d = 0; d < ndof; ++d)
          EXPECT_EQ(X[std::size_t(j) * colsPad + ei * ndof + d],
                    x[std::size_t(nodes[ei * kN + j]) * ndof + d]);
      for (int c = cols; c < colsPad; ++c)
        EXPECT_EQ(X[std::size_t(j) * colsPad + c], 0.0);
    }

    // Scatter accumulates in the historical element-outer order — replay
    // it directly and demand bitwise equality (shared nodes accumulate).
    std::vector<Real> y(nNodes * ndof, 0.25), ref(nNodes * ndof, 0.25);
    fem::scatterAddPanel(X, nodes.data(), kN, m, ndof, colsPad, y.data());
    for (int ei = 0; ei < m; ++ei)
      for (int j = 0; j < kN; ++j)
        for (int d = 0; d < ndof; ++d)
          ref[std::size_t(nodes[ei * kN + j]) * ndof + d] +=
              X[std::size_t(j) * colsPad + ei * ndof + d];
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], ref[i]);
  }
}

// ---- Engine-level tier equivalence ------------------------------------------

template <int DIM>
void tierEquivalenceUniform(int p, int ndof) {
  sim::SimComm comm(p, sim::Machine::loopback());
  auto mesh = makeMesh<DIM>(comm, DIM == 3 ? 1 : 2, 4);
  Field x = randomInput(mesh, ndof, 17);
  Field yS = mesh.makeField(ndof);
  fem::matvecUniform<DIM>(mesh, x, yS, ndof, 1.3, 0.7,
                          fem::SimdIsa::kScalar);
  const Real scale = std::max(Real(1), maxAbs(yS));
  for (fem::SimdIsa isa : availableTiers()) {
    if (isa == fem::SimdIsa::kScalar) continue;
    Field yV = mesh.makeField(ndof);
    fem::matvecUniform<DIM>(mesh, x, yV, ndof, 1.3, 0.7, isa);
    EXPECT_LE(maxDiff(yS, yV) / scale, 1e-13)
        << "DIM=" << DIM << " ndof=" << ndof
        << " isa=" << fem::simdIsaName(isa);
  }
}

TEST(SimdKernels, MatvecUniformTierEquivalence2D) {
  for (int ndof : {1, 2, 4, 5}) tierEquivalenceUniform<2>(2, ndof);
}

TEST(SimdKernels, MatvecUniformTierEquivalence3D) {
  for (int ndof : {1, 2, 4, 5}) tierEquivalenceUniform<3>(3, ndof);
}

template <int DIM>
void tierEquivalenceCoefBlocks(int p, int ndof) {
  sim::SimComm comm(p, sim::Machine::loopback());
  auto mesh = makeMesh<DIM>(comm, DIM == 3 ? 1 : 2, 4);
  const int nd2 = ndof * ndof;
  sim::PerRank<std::vector<Real>> cM(comm.size()), cK(comm.size());
  std::mt19937 gen(23);
  std::uniform_real_distribution<Real> dist(0.1, 1.0);
  for (int r = 0; r < comm.size(); ++r) {
    cM[r].resize(mesh.rank(r).nElems() * std::size_t(nd2));
    cK[r].resize(mesh.rank(r).nElems() * std::size_t(nd2));
    for (Real& v : cM[r]) v = dist(gen);
    for (Real& v : cK[r]) v = dist(gen);
  }
  Field x = randomInput(mesh, ndof, 31);
  Field yS = mesh.makeField(ndof);
  fem::matvecCoefBlocks<DIM>(mesh, x, yS, ndof, cM, cK,
                             fem::SimdIsa::kScalar);
  const Real scale = std::max(Real(1), maxAbs(yS));
  for (fem::SimdIsa isa : availableTiers()) {
    if (isa == fem::SimdIsa::kScalar) continue;
    Field yV = mesh.makeField(ndof);
    fem::matvecCoefBlocks<DIM>(mesh, x, yV, ndof, cM, cK, isa);
    EXPECT_LE(maxDiff(yS, yV) / scale, 1e-13)
        << "DIM=" << DIM << " ndof=" << ndof
        << " isa=" << fem::simdIsaName(isa);
  }

  // Fixed-tier determinism: bitwise identical across thread counts (the
  // coef-blocks engine's strongest contract) and across repeat runs.
  auto& pool = support::ThreadPool::instance();
  for (fem::SimdIsa isa : availableTiers()) {
    Field y1 = mesh.makeField(ndof), y4 = mesh.makeField(ndof);
    pool.setThreads(1);
    fem::matvecCoefBlocks<DIM>(mesh, x, y1, ndof, cM, cK, isa);
    pool.setThreads(4);
    fem::matvecCoefBlocks<DIM>(mesh, x, y4, ndof, cM, cK, isa);
    pool.setThreads(1);
    EXPECT_EQ(maxDiff(y1, y4), 0.0) << "isa=" << fem::simdIsaName(isa);
    Field y1b = mesh.makeField(ndof);
    fem::matvecCoefBlocks<DIM>(mesh, x, y1b, ndof, cM, cK, isa);
    EXPECT_EQ(maxDiff(y1, y1b), 0.0);
  }
}

TEST(SimdKernels, MatvecCoefBlocksTierEquivalenceAndDeterminism2D) {
  for (int ndof : {1, 2, 5}) tierEquivalenceCoefBlocks<2>(2, ndof);
}

TEST(SimdKernels, MatvecCoefBlocksTierEquivalenceAndDeterminism3D) {
  for (int ndof : {1, 2, 5}) tierEquivalenceCoefBlocks<3>(2, ndof);
}

/// A tiny uniform mesh whose element count is far below kMatvecBatch: the
/// whole engine runs on tail batches, every tier.
TEST(SimdKernels, TailOnlyBatches) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(2));  // 16 elems
  auto mesh = Mesh<2>::build(comm, dt);
  const int ndof = 3;
  Field x = randomInput(mesh, ndof, 5);
  Field yS = mesh.makeField(ndof);
  fem::matvecUniform<2>(mesh, x, yS, ndof, 1.0, 1.0, fem::SimdIsa::kScalar);
  const Real scale = std::max(Real(1), maxAbs(yS));
  for (fem::SimdIsa isa : availableTiers()) {
    Field yV = mesh.makeField(ndof);
    fem::matvecUniform<2>(mesh, x, yV, ndof, 1.0, 1.0, isa);
    EXPECT_LE(maxDiff(yS, yV) / scale, 1e-13);
  }
}

/// The scalar tier is the equivalence baseline against the per-element
/// reference engine: the batched path reassociates, so agreement is to
/// roundoff — and this must hold for the DEFAULT tier too (whatever the
/// machine dispatches to).
TEST(SimdKernels, DefaultTierMatchesNaiveReference) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto mesh = makeMesh<3>(comm, 1, 3);
  const int ndof = 5;
  const Real mc = 1.3, sc = 0.7;
  Field x = randomInput(mesh, ndof, 11);
  Field yN = mesh.makeField(ndof);
  fem::matvecNaive<3>(
      mesh, x, yN, ndof, [&](const Octant<3>& oct, const Real* in, Real* out) {
        constexpr int kC = kNumChildren<3>;
        Real col[kC], res[kC];
        for (int d = 0; d < ndof; ++d) {
          for (int i = 0; i < kC; ++i) {
            col[i] = in[i * ndof + d];
            res[i] = 0.0;
          }
          fem::applyMass<3>(oct.physSize(), col, res);
          for (int i = 0; i < kC; ++i) out[i * ndof + d] += mc * res[i];
          for (int i = 0; i < kC; ++i) res[i] = 0.0;
          fem::applyStiffness<3>(oct.physSize(), col, res);
          for (int i = 0; i < kC; ++i) out[i * ndof + d] += sc * res[i];
        }
      });
  Field yB = mesh.makeField(ndof);
  fem::matvecUniform<3>(mesh, x, yB, ndof, mc, sc);  // default dispatch
  const Real scale = std::max(Real(1), maxAbs(yN));
  EXPECT_LE(maxDiff(yN, yB) / scale, 1e-13);
}

}  // namespace
}  // namespace pt
