// Higher-order (p >= 2) scenario axis: sum-factorized tensor kernels vs
// dense quadrature assembly, the p = 1 tensor operator vs the closed-form
// reference operators, PSpace MATVEC contracts (factored vs dense panels,
// SIMD tiers, symmetry, partition independence), the p -> 1 transfer-pair
// transpose identity, and an end-to-end p = 2 screened-Poisson solve with
// the p-MG + h-GMG preconditioner converging at order p + 1.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "fem/elem_ops.hpp"
#include "fem/matvec_batched.hpp"
#include "fem/pspace.hpp"
#include "fem/tensor_kernels.hpp"
#include "la/gmg.hpp"
#include "la/ksp.hpp"
#include "la/pc.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"

namespace pt {
namespace {

// ---- Elemental kernels ------------------------------------------------------

/// Sum-factorized apply == dense-assembled apply to roundoff, every
/// tabulated order and both dimensions.
template <int DIM, int P>
void factoredMatchesDense() {
  constexpr int n = fem::kTensorNodes<DIM, P>;
  std::vector<Real> A(std::size_t(n) * n);
  const Real h = 0.125, mc = 1.3, sc = 0.7;
  fem::tensorAssembleDense<DIM, P>(h, mc, sc, A.data());
  std::mt19937 gen(3 * DIM + P);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  Real u[n], yF[n], yD[n];
  for (int i = 0; i < n; ++i) u[i] = dist(gen);
  fem::tensorApplyHelmholtz<DIM, P>(h, mc, sc, u, yF);
  Real scale = 1;
  for (int i = 0; i < n; ++i) {
    Real acc = 0;
    for (int j = 0; j < n; ++j) acc += A[std::size_t(i) * n + j] * u[j];
    yD[i] = acc;
    scale = std::max(scale, std::abs(acc));
  }
  for (int i = 0; i < n; ++i)
    EXPECT_LE(std::abs(yF[i] - yD[i]) / scale, 1e-13)
        << "DIM=" << DIM << " P=" << P << " i=" << i;
}

TEST(TensorKernels, FactoredMatchesDense2D) {
  factoredMatchesDense<2, 1>();
  factoredMatchesDense<2, 2>();
  factoredMatchesDense<2, 3>();
}

TEST(TensorKernels, FactoredMatchesDense3D) {
  factoredMatchesDense<3, 1>();
  factoredMatchesDense<3, 2>();
  factoredMatchesDense<3, 3>();
}

/// At p = 1 the tensor-node order (lexicographic, x fastest) coincides with
/// the mesh corner order, and Q = 2 Gauss integrates the bilinear entries
/// exactly — so tensorAssembleDense must reproduce the closed-form
/// reference operators at their documented scalings.
template <int DIM>
void p1MatchesRefOps() {
  constexpr int kC = kNumChildren<DIM>;
  const Real h = 0.25, mc = 1.7, sc = 0.4;
  Real jac = 1;
  for (int d = 0; d < DIM; ++d) jac *= h;
  const Real kscale = (DIM == 2) ? 1.0 : h;  // h^(DIM-2)
  std::vector<Real> A(std::size_t(kC) * kC);
  fem::tensorAssembleDense<DIM, 1>(h, mc, sc, A.data());
  const auto& refM = fem::refMass<DIM>();
  const auto& refK = fem::refStiffness<DIM>();
  for (int i = 0; i < kC; ++i)
    for (int j = 0; j < kC; ++j) {
      const Real want = mc * jac * refM[i * kC + j] + sc * kscale * refK[i * kC + j];
      EXPECT_NEAR(A[std::size_t(i) * kC + j], want,
                  1e-14 * std::max(Real(1), std::abs(want)))
          << "DIM=" << DIM << " (" << i << "," << j << ")";
    }
}

TEST(TensorKernels, P1MatchesReferenceOperators2D) { p1MatchesRefOps<2>(); }
TEST(TensorKernels, P1MatchesReferenceOperators3D) { p1MatchesRefOps<3>(); }

// ---- PSpace MATVEC ----------------------------------------------------------

Real maxAbs(const Field& f) {
  Real m = 0;
  for (const auto& v : f)
    for (Real x : v) m = std::max(m, std::abs(x));
  return m;
}

Real maxDiff(const Field& a, const Field& b) {
  Real m = 0;
  for (std::size_t r = 0; r < a.size(); ++r)
    for (std::size_t i = 0; i < a[r].size(); ++i)
      m = std::max(m, std::abs(a[r][i] - b[r][i]));
  return m;
}

/// Consistent pseudo-random field: a pure function of the global node key.
template <int DIM, int P>
Field hashField(const fem::PSpace<DIM, P>& ps, Real shift) {
  Field f = ps.makeField();
  for (int r = 0; r < ps.nRanks(); ++r)
    for (std::size_t i = 0; i < ps.rank(r).nNodes(); ++i) {
      const auto x = ps.nodeCoords(r, static_cast<std::uint32_t>(i));
      Real s = shift;
      for (int d = 0; d < DIM; ++d) s += (127.1 + 184.6 * d) * x[d];
      const Real h = std::sin(s) * 43758.5453;
      f[r][i] = h - std::floor(h) - 0.5;
    }
  return f;
}

template <int DIM, int P>
void pspaceMatvecContracts(int nRanks, Level level) {
  sim::SimComm comm(nRanks, sim::Machine::loopback());
  auto dt = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(level));
  auto mesh = Mesh<DIM>::build(comm, dt);
  fem::PSpace<DIM, P> ps(mesh);
  fem::PSpaceLa<DIM, P> S(ps);
  const Real mc = 1.0, sc = 1.0;

  Field u = hashField(ps, 0.0), v = hashField(ps, 2.5);
  Field yD, yF;
  ps.matvec(u, yD, mc, sc, fem::SimdIsa::kScalar);
  ps.matvecFactored(u, yF, mc, sc);
  const Real scale = std::max(Real(1), maxAbs(yD));
  EXPECT_LE(maxDiff(yD, yF) / scale, 1e-13);

  // Every compiled SIMD tier agrees with scalar to roundoff.
  const int detected = support::simdTier();
  for (int t = 1; t <= detected; ++t) {
    Field yT;
    ps.matvec(u, yT, mc, sc, static_cast<fem::SimdIsa>(t));
    EXPECT_LE(maxDiff(yD, yT) / scale, 1e-13) << "tier " << t;
  }

  // Symmetry in the owned-unique inner product.
  Field Av, Au;
  ps.matvec(v, Av, mc, sc);
  ps.matvec(u, Au, mc, sc);
  const Real uAv = S.dot(u, Av), vAu = S.dot(v, Au);
  EXPECT_LE(std::abs(uAv - vAu) / std::max(Real(1), std::abs(uAv)), 1e-12);
}

TEST(PSpace, MatvecContracts2D) { pspaceMatvecContracts<2, 2>(3, 3); }
TEST(PSpace, MatvecContracts3D) { pspaceMatvecContracts<3, 2>(2, 2); }
TEST(PSpace, MatvecContractsP3) { pspaceMatvecContracts<2, 3>(2, 3); }

/// Partition independence: the same global problem split across 1 vs 3
/// ranks yields the same nodal values (matched by exact integer node key)
/// to roundoff.
TEST(PSpace, PartitionIndependence) {
  constexpr int DIM = 2, P = 2;
  sim::SimComm c1(1, sim::Machine::loopback());
  sim::SimComm c3(3, sim::Machine::loopback());
  auto dt1 = DistTree<DIM>::fromGlobal(c1, uniformTree<DIM>(3));
  auto dt3 = DistTree<DIM>::fromGlobal(c3, uniformTree<DIM>(3));
  auto m1 = Mesh<DIM>::build(c1, dt1);
  auto m3 = Mesh<DIM>::build(c3, dt3);
  fem::PSpace<DIM, P> ps1(m1), ps3(m3);

  Field u1 = hashField(ps1, 0.0), u3 = hashField(ps3, 0.0);
  Field y1, y3;
  ps1.matvec(u1, y1, 1.0, 1.0);
  ps3.matvec(u3, y3, 1.0, 1.0);
  const Real scale = std::max(Real(1), maxAbs(y1));
  const auto& keys1 = ps1.rank(0).keys;
  for (int r = 0; r < ps3.nRanks(); ++r) {
    const auto& rs = ps3.rank(r);
    for (std::size_t i = 0; i < rs.nNodes(); ++i) {
      const auto it =
          std::lower_bound(keys1.begin(), keys1.end(), rs.keys[i]);
      ASSERT_TRUE(it != keys1.end() && *it == rs.keys[i]);
      const std::size_t j = it - keys1.begin();
      EXPECT_LE(std::abs(y3[r][i] - y1[0][j]) / scale, 1e-12);
    }
  }
}

/// R = P^T: <R f, c>_mesh == <f, P c>_pspace for consistent fields.
TEST(PSpace, TransferPairIsTranspose) {
  constexpr int DIM = 2, P = 2;
  sim::SimComm comm(3, sim::Machine::loopback());
  auto dt = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(3));
  auto mesh = Mesh<DIM>::build(comm, dt);
  fem::PSpace<DIM, P> ps(mesh);
  fem::PSpaceLa<DIM, P> S(ps);

  Field f = hashField(ps, 1.0);
  // Consistent coarse field from the global p = 1 node position.
  Field c = mesh.makeField(1);
  fem::setByPosition<DIM>(mesh, c, 1, [](const VecN<DIM>& pos, Real* out) {
    Real s = 0.3;
    for (int d = 0; d < DIM; ++d) s += (91.7 + 41.3 * d) * pos[d];
    const Real h = std::sin(s) * 43758.5453;
    out[0] = h - std::floor(h) - 0.5;
  });
  Field Pc, Rf;
  ps.prolongate(c, Pc);
  ps.restrictTr(f, Rf);
  const Real a = S.dot(f, Pc);
  const Real b = mesh.dot(Rf, c, 1);
  EXPECT_LE(std::abs(a - b) / std::max(Real(1), std::abs(a)), 1e-12);
}

// ---- End-to-end p = 2 solve -------------------------------------------------

constexpr int kDim2 = 2;

Real uExact2(const VecN<kDim2>& x) {
  Real v = 1;
  for (int d = 0; d < kDim2; ++d) v *= std::cos(2 * M_PI * x[d]);
  return v;
}

/// Screened Poisson (1 - Laplace) u = f with u* = prod cos(2 pi x_d):
/// GMRES + two-level p-MG over the full h-GMG stack, L2 order p + 1 = 3.
/// (The outer Krylov is GMRES, not CG: the h-GMG V-cycle restricts by
/// injection and runs an inner coarse Krylov, so the composed
/// preconditioner is mildly nonsymmetric — see fem::makePMultigridPc.)
TEST(PSpace, P2ScreenedPoissonOrder3WithGmg) {
  constexpr int DIM = kDim2, P = 2;
  using PS = fem::PSpace<DIM, P>;
  constexpr int kP1 = P + 1;
  constexpr int n = PS::kNpe;
  sim::SimComm comm(2, sim::Machine::loopback());
  const auto& b1 = fem::basis1d<P>();

  Real prevErr = 0;
  int prevIts = 0;
  for (Level level = 3; level <= 4; ++level) {
    auto tree = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(level));
    la::GmgOpFactory<DIM> factory =
        [](const Mesh<DIM>& m, int) -> la::GmgLevelOps<DIM> {
      la::GmgLevelOps<DIM> ops;
      ops.op = [&m](const Field& x, Field& y) {
        fem::matvecUniform<DIM>(m, x, y, 1, 1.0, 1.0);
      };
      ops.diag = la::assembleDiagonalBlocks<DIM>(
          m, 1, [](const Octant<DIM>& oct, Real* Ae) {
            fem::assembleGemmOperator<DIM>(oct.physSize(), 1.0, 1.0, Ae);
          });
      return ops;
    };
    la::Gmg<DIM> gmg(comm, tree, factory, {.levels = 2});
    const Mesh<DIM>& mesh = gmg.meshAt(0);
    PS ps(mesh);
    fem::PSpaceLa<DIM, P> S(ps);
    la::LinOp<Field> A = [&ps](const Field& x, Field& y) {
      ps.matvec(x, y, 1.0, 1.0);
    };
    la::Pc<Field> M =
        fem::makePMultigridPc<DIM, P>(ps, 1.0, 1.0, gmg.preconditioner());

    // RHS b_a = int f N_a and (after the solve) the L2 error, both by
    // per-element Gauss quadrature on the degree-P basis.
    Field b = ps.makeField();
    const Real fCoef = 1.0 + DIM * 4.0 * M_PI * M_PI;
    auto quadrature = [&](const Field* u, Field* rhs) -> Real {
      Real err2 = 0;
      for (int r = 0; r < ps.nRanks(); ++r) {
        const auto& rs = ps.rank(r);
        const RankMesh<DIM>& rm = mesh.rank(r);
        for (std::size_t slot = 0; slot < rm.nElems(); ++slot) {
          const auto& oct = rm.elems[rs.order[slot]];
          const Real h = oct.physSize();
          const Real jac = h * h;
          const VecN<DIM> a0 = oct.anchorCoords();
          const std::uint32_t* nodes = &rs.batchNodes[slot * n];
          for (int q = 0; q < n; ++q) {
            int t = q, qi[DIM];
            Real wq = 1;
            VecN<DIM> xq;
            for (int d = 0; d < DIM; ++d) {
              qi[d] = t % kP1;
              t /= kP1;
              wq *= b1.qw[qi[d]];
              xq[d] = a0[d] + h * b1.qx[qi[d]];
            }
            Real Nq[n];
            for (int a = 0; a < n; ++a) {
              int ta = a;
              Real Na = 1;
              for (int d = 0; d < DIM; ++d) {
                Na *= b1.N[qi[d] * kP1 + ta % kP1];
                ta /= kP1;
              }
              Nq[a] = Na;
            }
            if (rhs) {
              const Real fw = wq * jac * fCoef * uExact2(xq);
              for (int a = 0; a < n; ++a)
                (*rhs)[r][nodes[a]] += fw * Nq[a];
            }
            if (u) {
              Real uh = 0;
              for (int a = 0; a < n; ++a) uh += Nq[a] * (*u)[r][nodes[a]];
              const Real e = uh - uExact2(xq);
              err2 += wq * jac * e * e;
            }
          }
        }
      }
      return std::sqrt(err2);
    };
    quadrature(nullptr, &b);
    ps.accumulate(b);

    Field u = ps.makeField();
    auto res = la::gmres(
        S, A, b, u, {.rtol = 1e-10, .maxIterations = 100, .gmresRestart = 50},
        M);
    ASSERT_TRUE(res.converged) << "level " << int(level) << " rel "
                               << res.relResidual;
    const Real err = quadrature(&u, nullptr);
    if (prevIts) {
      EXPECT_LE(res.iterations, prevIts + 5);
    }
    if (prevErr > 0) {
      EXPECT_GT(prevErr / err, 5.6)
          << "L2 ratio below order-3 expectation at level " << int(level);
    }
    prevErr = err;
    prevIts = res.iterations;
  }
}

}  // namespace
}  // namespace pt
