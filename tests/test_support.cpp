#include <gtest/gtest.h>

#include <sstream>

#include "obs/phase.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "support/vecn.hpp"

namespace pt {
namespace {

TEST(VecN, Arithmetic) {
  Vec2 a{{1.0, 2.0}}, b{{3.0, -1.0}};
  Vec2 c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  Vec2 d = 2.0 * a;
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_DOUBLE_EQ(norm(Vec2{{3.0, 4.0}}), 5.0);
}

TEST(VecN, SubtractAndCompare) {
  Vec3 a{{1, 2, 3}}, b{{1, 2, 3}};
  EXPECT_EQ(a, b);
  Vec3 z = a - b;
  EXPECT_DOUBLE_EQ(norm(z), 0.0);
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(PT_CHECK(1 == 2), CheckError);
  EXPECT_NO_THROW(PT_CHECK(1 == 1));
  EXPECT_THROW(PT_CHECK_MSG(false, "context"), CheckError);
}

TEST(Check, MessageContainsContext) {
  try {
    PT_CHECK_MSG(false, "special-context");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("special-context"),
              std::string::npos);
  }
}

TEST(Timer, Accumulates) {
  Timer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_EQ(t.calls(), 2);
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.calls(), 0);
}

TEST(Timer, StopWithoutStartIsNoop) {
  Timer t;
  t.stop();
  EXPECT_EQ(t.calls(), 0);
}

TEST(PhaseSet, NamedAccess) {
  obs::PhaseSet ps;
  { obs::ScopedPhase sp(ps["ch-solve"]); }
  EXPECT_EQ(ps.all().size(), 1u);
  EXPECT_EQ(ps["ch-solve"].calls(), 1);
  EXPECT_GE(ps.all()["ch-solve"].seconds(), 0.0);
  ps.reset();
  EXPECT_EQ(ps["ch-solve"].calls(), 0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
  }
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    Real v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    auto k = r.uniformInt(5, 9);
    EXPECT_GE(k, 5);
    EXPECT_LE(k, 9);
  }
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"procs", "time"});
  t.addRow(224, 2.87);
  t.addRow(28672, 0.027);
  std::ostringstream os;
  t.print(os, "matvec");
  EXPECT_NE(os.str().find("matvec"), std::string::npos);
  EXPECT_NE(os.str().find("28672"), std::string::npos);
  std::ostringstream cs;
  t.printCsv(cs);
  EXPECT_NE(cs.str().find("procs,time"), std::string::npos);
}

}  // namespace
}  // namespace pt
