#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/fields.hpp"
#include "fem/matvec.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk.hpp"
#include "octree/balance.hpp"

namespace pt {
namespace {

template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        return std::abs(std::sqrt(r2) - 0.3) < 2.0 * o.physSize() ? fine
                                                                  : coarse;
      },
      tree);
  return balanceTree(tree);
}

TEST(Vtk, WritesWellFormedFile) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 4));
  auto mesh = Mesh<2>::build(comm, dt);
  Field phi = mesh.makeField(1);
  fem::setByPosition<2>(mesh, phi, 1, [](const VecN<2>& x, Real* v) {
    v[0] = apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.3, 0.02);
  });
  sim::PerRank<std::vector<Real>> cn(2);
  for (int r = 0; r < 2; ++r) cn[r].assign(mesh.rank(r).nElems(), 0.02);
  const std::string path = "/tmp/pt_test_mesh.vtk";
  io::writeVtk<2>(path, mesh, {{"phi", &phi, 1}}, {{"cn", &cn}});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(s.find("UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(s.find("SCALARS phi"), std::string::npos);
  EXPECT_NE(s.find("SCALARS cn"), std::string::npos);
  EXPECT_NE(s.find("SCALARS level"), std::string::npos);
  // Counts line up.
  const std::size_t n = mesh.globalElemCount();
  std::ostringstream cells;
  cells << "CELLS " << n << " " << n * 5;
  EXPECT_NE(s.find(cells.str()), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, FileRoundTrip) {
  sim::SimComm comm(3, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 5));
  auto mesh = Mesh<2>::build(comm, dt);
  Field phi = mesh.makeField(1), vel = mesh.makeField(2);
  fem::setByPosition<2>(mesh, phi, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(3 * x[0]) + x[1];
  });
  fem::setByPosition<2>(mesh, vel, 2, [](const VecN<2>& x, Real* v) {
    v[0] = x[0] * x[1];
    v[1] = -x[1];
  });
  sim::PerRank<std::vector<Real>> cn(3);
  for (int r = 0; r < 3; ++r) {
    cn[r].resize(mesh.rank(r).nElems());
    for (std::size_t e = 0; e < cn[r].size(); ++e)
      cn[r][e] = 0.01 * (e % 7);
  }
  auto ck = io::makeCheckpoint<2>(dt, mesh,
                                  {{"phi", {&phi, 1}}, {"vel", {&vel, 2}}},
                                  {{"cn", &cn}});
  const std::string path = "/tmp/pt_test_ck.bin";
  io::saveCheckpoint<2>(path, ck);
  auto ck2 = io::loadCheckpointFile<2>(path);
  std::remove(path.c_str());
  EXPECT_EQ(ck2.writerRanks, 3);
  ASSERT_EQ(ck2.leaves.size(), ck.leaves.size());
  EXPECT_TRUE(std::equal(ck.leaves.begin(), ck.leaves.end(),
                         ck2.leaves.begin()));
  ASSERT_EQ(ck2.nodal.size(), 2u);
  EXPECT_EQ(ck2.nodal[0].name, "phi");
  EXPECT_EQ(ck2.nodal[1].ndof, 2);
  EXPECT_EQ(ck2.nodal[0].values, ck.nodal[0].values);
  ASSERT_EQ(ck2.cell.size(), 1u);
  EXPECT_EQ(ck2.cell[0].values, ck.cell[0].values);
}

TEST(Checkpoint, RestartOnMoreRanksBitwiseFields) {
  // Dump on 2 ranks, restart on 5: the paper's Sec II-E scenario. Fields
  // must be bitwise identical by node key after redistribution.
  sim::SimComm commA(2, sim::Machine::loopback());
  auto dtA = DistTree<2>::fromGlobal(commA, interfaceTree<2>(2, 5));
  auto meshA = Mesh<2>::build(commA, dtA);
  Field phiA = meshA.makeField(1);
  fem::setByPosition<2>(meshA, phiA, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(9 * x[0]) * std::cos(7 * x[1]);
  });
  auto ck = io::makeCheckpoint<2>(dtA, meshA, {{"phi", {&phiA, 1}}});

  sim::SimComm commB(5, sim::Machine::loopback());
  auto restored = io::restoreCheckpoint<2>(commB, ck, /*redistribute=*/true);
  EXPECT_EQ(restored.activeRanks, 2);
  EXPECT_TRUE(restored.tree.globallyLinear());
  // After redistribution every rank holds a share (activation).
  int nonEmpty = 0;
  for (int r = 0; r < 5; ++r)
    nonEmpty += !restored.tree.localOf(r).empty();
  EXPECT_EQ(nonEmpty, 5);
  // Tree content identical.
  auto a = dtA.gather(), b = restored.tree.gather();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  // Field values bitwise equal by key.
  ASSERT_EQ(restored.nodal.size(), 1u);
  const Field& phiB = restored.nodal[0].second;
  std::map<NodeKey<2>, Real, NodeKeyLess<2>> ref;
  for (int r = 0; r < 2; ++r) {
    const auto& rm = meshA.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      ref[rm.nodeKeys[li]] = phiA[r][li];
  }
  for (int r = 0; r < 5; ++r) {
    const auto& rm = restored.mesh->rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      auto it = ref.find(rm.nodeKeys[li]);
      ASSERT_TRUE(it != ref.end());
      EXPECT_EQ(phiB[r][li], it->second);  // bitwise
    }
  }
}

TEST(Checkpoint, InactiveRanksStayEmptyWithoutRedistribute) {
  sim::SimComm commA(2, sim::Machine::loopback());
  auto dtA = DistTree<2>::fromGlobal(commA, uniformTree<2>(3));
  auto meshA = Mesh<2>::build(commA, dtA);
  Field phiA = meshA.makeField(1);
  auto ck = io::makeCheckpoint<2>(dtA, meshA, {{"phi", {&phiA, 1}}});
  sim::SimComm commB(6, sim::Machine::loopback());
  auto restored = io::restoreCheckpoint<2>(commB, ck, /*redistribute=*/false);
  // Only the active communicator holds data until repartition/remesh.
  for (int r = 0; r < 2; ++r) EXPECT_FALSE(restored.tree.localOf(r).empty());
  for (int r = 2; r < 6; ++r) EXPECT_TRUE(restored.tree.localOf(r).empty());
  // A later repartition activates the inactive ranks.
  restored.tree.repartition();
  for (int r = 0; r < 6; ++r) EXPECT_FALSE(restored.tree.localOf(r).empty());
}

TEST(Checkpoint, RestoresOnFewerRanks) {
  // Dump on 4 ranks, restart on 2: the stored leaves are re-blocked over
  // the smaller communicator and field values survive bitwise.
  sim::SimComm commA(4, sim::Machine::loopback());
  auto dtA = DistTree<2>::fromGlobal(commA, uniformTree<2>(3));
  auto meshA = Mesh<2>::build(commA, dtA);
  Field phiA = meshA.makeField(1);
  fem::setByPosition<2>(meshA, phiA, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(5 * x[0]) - std::cos(3 * x[1]);
  });
  auto ck = io::makeCheckpoint<2>(dtA, meshA, {{"phi", {&phiA, 1}}});
  sim::SimComm commB(2, sim::Machine::loopback());
  auto restored = io::restoreCheckpoint<2>(commB, ck, /*redistribute=*/true);
  EXPECT_EQ(restored.activeRanks, 2);
  EXPECT_TRUE(restored.tree.globallyLinear());
  auto a = dtA.gather(), b = restored.tree.gather();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  // Field values bitwise equal by key.
  std::map<NodeKey<2>, Real, NodeKeyLess<2>> ref;
  for (int r = 0; r < 4; ++r) {
    const auto& rm = meshA.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      ref[rm.nodeKeys[li]] = phiA[r][li];
  }
  ASSERT_EQ(restored.nodal.size(), 1u);
  for (int r = 0; r < 2; ++r) {
    const auto& rm = restored.mesh->rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      auto it = ref.find(rm.nodeKeys[li]);
      ASSERT_TRUE(it != ref.end());
      EXPECT_EQ(restored.nodal[0].second[r][li], it->second);  // bitwise
    }
  }
}

TEST(Checkpoint, CellFieldsFollowLeavesAcrossRedistribution) {
  sim::SimComm commA(2, sim::Machine::loopback());
  auto dtA = DistTree<2>::fromGlobal(commA, interfaceTree<2>(2, 4));
  auto meshA = Mesh<2>::build(commA, dtA);
  // Tag each leaf with its own Morton-ish id.
  sim::PerRank<std::vector<Real>> tag(2);
  {
    Real id = 0;
    for (int r = 0; r < 2; ++r) {
      tag[r].resize(dtA.localOf(r).size());
      for (auto& v : tag[r]) v = id++;
    }
  }
  auto ck = io::makeCheckpoint<2>(dtA, meshA, {}, {{"tag", &tag}});
  sim::SimComm commB(5, sim::Machine::loopback());
  auto restored = io::restoreCheckpoint<2>(commB, ck, true);
  ASSERT_EQ(restored.cell.size(), 1u);
  // The i-th leaf globally must still carry tag i.
  Real expect = 0;
  for (int r = 0; r < 5; ++r)
    for (Real v : restored.cell[0].second[r]) EXPECT_EQ(v, expect++);
}

}  // namespace
}  // namespace pt
