// Remesh-pipeline fast path (DESIGN.md §11). The contracts under test are
// exact-equality contracts:
//   - the threaded / ping-pong local-Cahn passes are bitwise identical to
//     the historical full-copy serial loop at any thread count;
//   - refine() provenance names the same source leaf locatePoint would find,
//     for every output of randomized multi-level refinements;
//   - no-op remeshes skip the mesh rebuild, transfers, and solver-cache
//     invalidation entirely (counter-asserted), the predicate allocates
//     nothing, and the exact tree comparison catches balance-undone cases;
//   - one routing-table gather serves a whole 5-field transfer epoch;
//   - the full adaptive stepper produces identical histories with the fast
//     path on and off, serial and threaded, including remeshEvery=1.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "amr/refine.hpp"
#include "amr/remesh.hpp"
#include "apps/fields.hpp"
#include "chns/solver.hpp"
#include "intergrid/transfer.hpp"
#include "localcahn/identifier.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

// Global allocation counter for the zero-allocation predicate test.
// Counting is toggled only around the measured call on the main thread.
// new/delete below are a matched malloc/free pair; GCC's pairing heuristic
// can't see that through the replaced globals.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<long> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_countAllocs.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace pt {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { support::ThreadPool::instance().setThreads(n); }
  ~ThreadGuard() { support::ThreadPool::instance().setThreads(1); }
};

/// Multi-level adapted tree: uniform `base` refined to `fine` in a band
/// around the circle r = 0.25 centered at (0.5, 0.5[, 0.5]).
template <int DIM>
DistTree<DIM> adaptedDropTree(sim::SimComm& comm, Level base, Level fine) {
  auto dt = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(base));
  sim::PerRank<std::vector<Level>> want(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    const auto& leaves = dt.localOf(r);
    want[r].resize(leaves.size());
    for (std::size_t e = 0; e < leaves.size(); ++e) {
      auto c = leaves[e].centerCoords();
      Real d2 = 0;
      for (int d = 0; d < DIM; ++d) d2 += (c[d] - 0.5) * (c[d] - 0.5);
      want[r][e] =
          std::abs(std::sqrt(d2) - 0.25) < 0.1 ? fine : base;
    }
  }
  return remesh(dt, want);
}

Field dropField(const Mesh<2>& mesh, Real eps) {
  Field phi = mesh.makeField(1);
  fem::setByPosition<2>(mesh, phi, 1, [&](const VecN<2>& x, Real* v) {
    v[0] = apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, eps);
  });
  return phi;
}

// ---- Threaded / ping-pong local-Cahn passes --------------------------------

TEST(LocalCahnFastPath, ErodeDilateBitwiseMatchesBaseline) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto tree = adaptedDropTree<2>(comm, 4, 6);
  auto mesh = Mesh<2>::build(comm, tree);
  Field phi = dropField(mesh, 0.02);
  Field bw = localcahn::threshold(mesh, phi, -0.8, true);

  for (auto stage : {localcahn::Stage::kErosion, localcahn::Stage::kDilation})
    for (int steps : {1, 2, 4}) {
      Field fast = localcahn::erodeDilate(mesh, bw, stage, steps, 6, true);
      Field base = localcahn::erodeDilate(mesh, bw, stage, steps, 6, false);
      for (int r = 0; r < comm.size(); ++r)
        EXPECT_EQ(fast[r], base[r])
            << "stage " << static_cast<int>(stage) << " steps " << steps
            << " rank " << r;
    }
}

TEST(LocalCahnFastPath, IdentifyBitwiseAcrossThreadCounts) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto tree = adaptedDropTree<2>(comm, 4, 6);
  auto mesh = Mesh<2>::build(comm, tree);
  Field phi = mesh.makeField(1);
  fem::setByPosition<2>(mesh, phi, 1, [&](const VecN<2>& x, Real* v) {
    v[0] = apps::lollipopPhi<2>(x, 0.01);
  });

  localcahn::IdentifyParams p;
  p.erodeSteps = 2;
  p.extraDilateSteps = 3;
  p.fastPath = false;
  auto baseline = localcahn::identifyLocalCahn(mesh, phi, 6, p);

  p.fastPath = true;
  for (int threads : {1, 2, 4}) {
    ThreadGuard tg(threads);
    auto cn = localcahn::identifyLocalCahn(mesh, phi, 6, p);
    for (int r = 0; r < comm.size(); ++r)
      EXPECT_EQ(cn[r], baseline[r]) << "threads " << threads << " rank " << r;
  }
}

// ---- Refine provenance vs point location -----------------------------------

template <int DIM>
void checkProvenance(unsigned seed) {
  Rng rng(seed);
  // Random multi-level tree: a few rounds of randomized refinement.
  OctList<DIM> leaves{Octant<DIM>::root()};
  for (int round = 0; round < (DIM == 2 ? 3 : 2); ++round) {
    std::vector<Level> lv(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i)
      lv[i] = static_cast<Level>(leaves[i].level + rng.uniformInt(0, 2));
    leaves = refine(leaves, std::move(lv));
  }
  // Randomized multi-level want vector (refines and coarsen votes mixed).
  std::vector<Level> want(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::int64_t w = leaves[i].level + rng.uniformInt(-2, 2);
    want[i] = static_cast<Level>(std::max<std::int64_t>(0, w));
  }
  std::vector<Level> up(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i)
    up[i] = std::max(want[i], leaves[i].level);

  std::vector<std::uint32_t> srcOf;
  OctList<DIM> out = refine(leaves, up, &srcOf);
  ASSERT_EQ(srcOf.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::int64_t located = locatePoint(leaves, out[i].x);
    ASSERT_GE(located, 0);
    EXPECT_EQ(static_cast<std::int64_t>(srcOf[i]), located)
        << "output " << i << " seed " << seed;
    // The value the remesh vote consumes is identical either way.
    EXPECT_EQ(std::min(want[srcOf[i]], out[i].level),
              std::min(want[located], out[i].level));
  }
}

TEST(RefineProvenance, MatchesLocatePointOnRandomizedTrees2D) {
  for (unsigned seed : {1u, 7u, 42u, 1234u}) checkProvenance<2>(seed);
}

TEST(RefineProvenance, MatchesLocatePointOnRandomizedTrees3D) {
  for (unsigned seed : {3u, 99u}) checkProvenance<3>(seed);
}

// ---- No-op remesh detection -------------------------------------------------

TEST(NoopRemesh, PredicateAllocatesNothingAndDetectsChanges) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  sim::PerRank<std::vector<Level>> want(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    const auto& leaves = tree.localOf(r);
    want[r].resize(leaves.size());
    for (std::size_t e = 0; e < leaves.size(); ++e)
      want[r][e] = leaves[e].level;
  }

  g_allocs.store(0);
  g_countAllocs.store(true);
  const bool noop = remeshIsNoOp(tree, want);
  g_countAllocs.store(false);
  EXPECT_TRUE(noop);
  EXPECT_EQ(g_allocs.load(), 0) << "remeshIsNoOp must be allocation-free";

  // A refinement request anywhere defeats it.
  auto wantR = want;
  wantR[1][0] = static_cast<Level>(wantR[1][0] + 1);
  EXPECT_FALSE(remeshIsNoOp(tree, wantR));

  // A complete sibling family unanimously voting to coarsen defeats it
  // (the first kC leaves of a uniform tree share one parent).
  auto wantC = want;
  for (int c = 0; c < kNumChildren<2>; ++c)
    wantC[0][c] = static_cast<Level>(want[0][c] - 1);
  EXPECT_FALSE(remeshIsNoOp(tree, wantC));

  // An incomplete family voting to coarsen is correctly ignored.
  auto wantP = want;
  wantP[0][0] = static_cast<Level>(want[0][0] - 1);
  wantP[0][1] = static_cast<Level>(want[0][1] - 1);
  EXPECT_TRUE(remeshIsNoOp(tree, wantP));
}

TEST(NoopRemesh, ExactComparisonCatchesBalanceUndoneCoarsening) {
  // Level-4 block in a level-2 background: balance inserts a level-3 ring.
  // Voting the ring down to 2 while keeping the block at 4 passes consensus
  // coarsening but balance immediately restores the ring — the predicate
  // conservatively says "not a no-op", the exact tree comparison disagrees.
  sim::SimComm comm(1, sim::Machine::loopback());
  auto base = DistTree<2>::fromGlobal(comm, uniformTree<2>(2));
  sim::PerRank<std::vector<Level>> mkWant(1);
  mkWant[0].assign(base.localOf(0).size(), 2);
  mkWant[0][0] = 4;
  auto tree = remesh(base, mkWant);

  sim::PerRank<std::vector<Level>> want(1);
  const auto& leaves = tree.localOf(0);
  want[0].resize(leaves.size());
  bool sawRing = false;
  for (std::size_t e = 0; e < leaves.size(); ++e) {
    want[0][e] = leaves[e].level == 3 ? 2 : leaves[e].level;
    sawRing = sawRing || leaves[e].level == 3;
  }
  ASSERT_TRUE(sawRing);
  EXPECT_FALSE(remeshIsNoOp(tree, want));
  auto out = remesh(tree, want);
  EXPECT_EQ(out.localOf(0), tree.localOf(0));
}

TEST(NoopRemesh, SolverSkipsRebuildTransferAndInvalidation) {
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<2> opt;
  opt.params.Cn = 0.03;
  // Every element already sits at the target level, so identify produces a
  // want vector equal to the current tree -> tier-1 no-op.
  opt.coarseLevel = opt.interfaceLevel = opt.featureLevel = 4;
  opt.referenceLevel = 4;
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  chns::ChnsSolver<2> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });

  const Mesh<2>* meshBefore = &s.mesh();
  const long rebuilds = s.meshRebuilds();
  const long invalidations = s.cacheInvalidations();
  s.remeshNow();
  s.remeshNow();
  EXPECT_EQ(s.noopRemeshes(), 2);
  EXPECT_EQ(s.meshRebuilds(), rebuilds) << "no-op remesh rebuilt the mesh";
  EXPECT_EQ(s.cacheInvalidations(), invalidations)
      << "no-op remesh invalidated warm solver caches";
  EXPECT_EQ(&s.mesh(), meshBefore) << "no-op remesh replaced the mesh object";
}

// ---- Transfer-epoch routing tables ------------------------------------------

TEST(TransferEpoch, FiveFieldEpochChargesOneTableGather) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto oldTree = adaptedDropTree<2>(comm, 3, 5);
  auto oldMesh = Mesh<2>::build(comm, oldTree);
  auto newTree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto newMesh = Mesh<2>::build(comm, newTree);

  Rng rng(5);
  auto randomField = [&](int ndof) {
    Field f = oldMesh.makeField(ndof);
    for (auto& rank : f)
      for (auto& v : rank) v = rng.uniform(-1, 1);
    oldMesh.ghostRead(f, ndof);
    return f;
  };
  const Field phi = randomField(1), mu = randomField(1), vel = randomField(2),
              p = randomField(1);
  sim::PerRank<std::vector<Real>> cell(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    cell[r].resize(oldTree.localOf(r).size());
    for (auto& v : cell[r]) v = rng.uniform(0.01, 0.03);
  }

  auto runEpoch = [&](bool fast) {
    const long c0 = comm.stats().collectives;
    const intergrid::TransferTables<2> tables =
        fast ? intergrid::gatherTransferTables(oldTree)
             : intergrid::TransferTables<2>{};
    const intergrid::TransferTables<2>* tp = fast ? &tables : nullptr;
    Field a = intergrid::transferNodal(oldMesh, phi, newMesh, 1, tp);
    Field b = intergrid::transferNodal(oldMesh, mu, newMesh, 1, tp);
    Field c = intergrid::transferNodal(oldMesh, vel, newMesh, 2, tp);
    Field d = intergrid::transferNodal(oldMesh, p, newMesh, 1, tp);
    auto e = intergrid::transferCell(oldTree, cell, newTree, tp);
    return std::make_pair(comm.stats().collectives - c0,
                          std::make_pair(std::move(a), std::move(e)));
  };
  auto fast = runEpoch(true);
  auto base = runEpoch(false);
  // Identical results...
  for (int r = 0; r < comm.size(); ++r) {
    EXPECT_EQ(fast.second.first[r], base.second.first[r]);
    EXPECT_EQ(fast.second.second[r], base.second.second[r]);
  }
  // ...and exactly the per-field table gathers saved: the baseline charges
  // 4 nodal splitter gathers + 2 in transferCell (splitters + endpoint
  // round), the epoch path exactly one combined gather.
  EXPECT_EQ(base.first - fast.first, 5);
}

// ---- Per-phase remesh instrumentation ---------------------------------------

TEST(RemeshTimersTest, PhasesRecordOneCallEach) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  sim::PerRank<std::vector<Level>> want(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    const auto& leaves = tree.localOf(r);
    want[r].resize(leaves.size());
    for (std::size_t e = 0; e < leaves.size(); ++e)
      want[r][e] = static_cast<Level>(leaves[e].level + (e % 7 == 0 ? 1 : 0));
  }
  obs::PhaseSet ts;
  RemeshTimers rt{&ts["refine"], &ts["coarsen"], &ts["balance"],
                  &ts["repartition"]};
  auto out = remesh(tree, want, rt);
  EXPECT_GT(out.localOf(0).size() + out.localOf(1).size(),
            tree.localOf(0).size() + tree.localOf(1).size());
  EXPECT_EQ(ts["refine"].calls(), 1);
  EXPECT_EQ(ts["coarsen"].calls(), 1);
  EXPECT_EQ(ts["balance"].calls(), 1);
  EXPECT_EQ(ts["repartition"].calls(), 1);
}

// ---- Full-pipeline history identity -----------------------------------------

template <int DIM>
chns::ChnsSolver<DIM> makeAdaptiveDropSolver(sim::SimComm& comm, bool fast) {
  chns::ChnsOptions<DIM> opt;
  opt.params.Cn = 0.03;
  opt.dt = 1e-3;
  opt.blocksPerStep = 1;
  opt.remeshEvery = 1;
  opt.coarseLevel = 3;
  opt.interfaceLevel = 5;
  opt.featureLevel = 5;
  opt.referenceLevel = 5;
  opt.remeshFastPath = fast;
  opt.identify.fastPath = fast;
  auto tree = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(4));
  chns::ChnsSolver<DIM> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<DIM>& x) {
    return apps::dropPhi<DIM>(x, VecN<DIM>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  return s;
}

TEST(RemeshPipeline, HistoriesIdenticalFastVsBaseline) {
  sim::SimComm c1(2, sim::Machine::loopback());
  sim::SimComm c2(2, sim::Machine::loopback());
  auto base = makeAdaptiveDropSolver<2>(c1, false);
  auto fast = makeAdaptiveDropSolver<2>(c2, true);
  for (int step = 0; step < 3; ++step) {
    base.step();
    fast.step();
    EXPECT_EQ(base.lastChNewton_.totalLinearIterations,
              fast.lastChNewton_.totalLinearIterations);
    EXPECT_EQ(base.lastNs_.iterations, fast.lastNs_.iterations);
    EXPECT_EQ(base.lastPp_.iterations, fast.lastPp_.iterations);
    EXPECT_EQ(base.lastVuIterations_, fast.lastVuIterations_);
    for (int r = 0; r < base.mesh().nRanks(); ++r) {
      EXPECT_EQ(base.tree().localOf(r), fast.tree().localOf(r))
          << "step " << step << " rank " << r;
      EXPECT_EQ(base.phi()[r], fast.phi()[r]) << "step " << step;
      EXPECT_EQ(base.velocity()[r], fast.velocity()[r]) << "step " << step;
      EXPECT_EQ(base.pressure()[r], fast.pressure()[r]) << "step " << step;
      EXPECT_EQ(base.elemCn()[r], fast.elemCn()[r]) << "step " << step;
    }
  }
  // The adapted drop holds steady for at least one cadence tick.
  EXPECT_GT(fast.noopRemeshes(), 0);
}

TEST(RemeshPipeline, ThreadedFastPathMatchesSerial) {
  sim::SimComm c1(2, sim::Machine::loopback());
  auto serial = makeAdaptiveDropSolver<2>(c1, true);
  serial.step();
  serial.step();

  sim::SimComm c2(2, sim::Machine::loopback());
  ThreadGuard tg(4);
  auto threaded = makeAdaptiveDropSolver<2>(c2, true);
  threaded.step();
  threaded.step();

  EXPECT_EQ(serial.lastChNewton_.totalLinearIterations,
            threaded.lastChNewton_.totalLinearIterations);
  for (int r = 0; r < serial.mesh().nRanks(); ++r) {
    EXPECT_EQ(serial.tree().localOf(r), threaded.tree().localOf(r));
    EXPECT_EQ(serial.phi()[r], threaded.phi()[r]);
    EXPECT_EQ(serial.velocity()[r], threaded.velocity()[r]);
  }
}

}  // namespace
}  // namespace pt
