#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "apps/fields.hpp"
#include "fem/bc.hpp"
#include "fem/matvec.hpp"
#include "la/gmg.hpp"
#include "la/ksp.hpp"
#include "la/pc.hpp"
#include "chns/params.hpp"
#include "octree/balance.hpp"

namespace pt {
namespace {

/// Dirichlet Poisson factory: each level discretizes -Laplace with the
/// boundary rows replaced by (scaled) identity.
template <int DIM>
la::GmgOpFactory<DIM> poissonFactory(std::deque<Field>& masks) {
  return [&masks](const Mesh<DIM>& mesh, int level) -> la::GmgLevelOps<DIM> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
      fem::stiffnessMatvec(mesh, x, y);
    };
    la::GmgLevelOps<DIM> ops;
    ops.op = fem::dirichletOp(mesh, mask, K);
    ops.diag = la::assembleDiagonalBlocks<DIM>(
        mesh, 1, [](const Octant<DIM>& oct, Real* Ae) {
          const auto& refK = fem::refStiffness<DIM>();
          const Real kscale = (DIM == 2) ? 1.0 : oct.physSize();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * kscale;
        });
    // Boundary rows act as identity; use unit diagonal there.
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
}

TEST(Gmg, HierarchyShrinksByLevel) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 4});
  ASSERT_GE(gmg.numLevels(), 3);
  for (int l = 1; l < gmg.numLevels(); ++l)
    EXPECT_LT(gmg.meshAt(l).globalElemCount(),
              gmg.meshAt(l - 1).globalElemCount());
  // Uniform 2D coarsening shrinks by ~4x per level.
  EXPECT_EQ(gmg.meshAt(1).globalElemCount(),
            gmg.meshAt(0).globalElemCount() / 4);
}

TEST(Gmg, VcycleReducesPoissonResidual) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 4});
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, masks[0], K);
  Field f = mesh.makeField(), fw = mesh.makeField();
  fem::setByPosition<2>(mesh, f, 1, [](const VecN<2>& p, Real* v) {
    v[0] = std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]);
  });
  fem::massMatvec(mesh, f, fw);
  fem::zeroMasked(mesh, masks[0], fw);
  // A few stationary V-cycle iterations must contract the residual hard.
  auto M = gmg.preconditioner();
  Field x = mesh.makeField(), r = mesh.makeField(), z = mesh.makeField(),
        Ax = mesh.makeField();
  A(x, Ax);
  S.sub(fw, Ax, r);
  const Real r0 = S.norm(r);
  for (int it = 0; it < 6; ++it) {
    M(r, z);
    S.axpy(x, 1.0, z);
    A(x, Ax);
    S.sub(fw, Ax, r);
  }
  EXPECT_LT(S.norm(r), 1e-3 * r0);  // > x1000 reduction in 6 cycles
}

TEST(Gmg, PreconditionerBeatsJacobiIterationCount) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(6));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 5});
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, masks[0], K);
  Field fw = mesh.makeField();
  {
    Field f = mesh.makeField();
    fem::setByPosition<2>(mesh, f, 1, [](const VecN<2>& p, Real* v) {
      v[0] = std::exp(p[0]) * (1 - p[1]);
    });
    fem::massMatvec(mesh, f, fw);
    fem::zeroMasked(mesh, masks[0], fw);
  }
  la::KspOptions opt{.rtol = 1e-9, .maxIterations = 600, .gmresRestart = 60};
  // Jacobi-preconditioned GMRES.
  Field diag = la::assembleDiagonalBlocks<2>(
      mesh, 1, [](const Octant<2>& oct, Real* Ae) {
        (void)oct;
        const auto& refK = fem::refStiffness<2>();
        for (std::size_t k = 0; k < refK.size(); ++k) Ae[k] = refK[k];
      });
  la::LinOp<Field> Mj = la::makeJacobi(mesh, 1, std::move(diag));
  Field xj = mesh.makeField();
  auto resJ = la::gmres(S, A, fw, xj, opt, &Mj);
  // GMG-preconditioned GMRES.
  la::LinOp<Field> Mg = gmg.preconditioner();
  Field xg = mesh.makeField();
  auto resG = la::gmres(S, A, fw, xg, opt, &Mg);
  EXPECT_TRUE(resJ.converged);
  EXPECT_TRUE(resG.converged);
  EXPECT_LT(resG.iterations, resJ.iterations / 3);  // level-independent-ish
  // Same solution.
  Field d = mesh.makeField();
  S.sub(xj, xg, d);
  EXPECT_LT(S.norm(d), 1e-6 * std::max(S.norm(xj), Real(1e-300)));
}

TEST(Gmg, VariableCoefficientPoissonOnAdaptiveMesh) {
  // The paper's actual target: the variable-density pressure Poisson
  // operator div( (1/rho(phi)) grad p ) on an adaptive interface mesh.
  sim::SimComm comm(2, sim::Machine::loopback());
  OctList<2> tree;
  buildTree<2>(
      Octant<2>::root(),
      [](const Octant<2>& o) {
        auto c = o.centerCoords();
        const Real d = std::abs(std::hypot(c[0] - 0.5, c[1] - 0.5) - 0.3);
        return d < 3.0 * o.physSize() ? Level(6) : Level(4);
      },
      tree);
  tree = balanceTree(tree);
  auto dist = DistTree<2>::fromGlobal(comm, tree);

  chns::Params P;
  P.rhoMinus = 0.1;  // 10x density contrast across the interface
  auto phiAt = [&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.3, 0.03);
  };
  std::deque<Field> masks;
  auto factory = [&](const Mesh<2>& mesh, int level) -> la::GmgLevelOps<2> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> W = [&mesh, &P, phiAt](const Field& x, Field& y) {
      fem::matvec<2>(mesh, x, y, 1,
                     [&](const Octant<2>& oct, const Real* in, Real* out) {
                       const Real coef =
                           1.0 / P.rho(phiAt(oct.centerCoords()));
                       Real tmp[4] = {};
                       fem::applyStiffness<2>(oct.physSize(), in, tmp);
                       for (int i = 0; i < 4; ++i) out[i] += coef * tmp[i];
                     });
    };
    la::GmgLevelOps<2> ops;
    ops.op = fem::dirichletOp(mesh, mask, W);
    ops.diag = la::assembleDiagonalBlocks<2>(
        mesh, 1, [&](const Octant<2>& oct, Real* Ae) {
          const Real coef = 1.0 / P.rho(phiAt(oct.centerCoords()));
          const auto& refK = fem::refStiffness<2>();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * coef;
        });
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
  la::Gmg<2> gmg(comm, dist, factory, {.levels = 3, .minLevel = 2});
  ASSERT_GE(gmg.numLevels(), 2);
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  auto ops0 = factory(mesh, 0);
  Field b = mesh.makeField();
  fem::setByPosition<2>(mesh, b, 1, [](const VecN<2>& p, Real* v) {
    v[0] = p[0] - p[1];
  });
  fem::zeroMasked(mesh, masks[0], b);
  la::LinOp<Field> Mg = gmg.preconditioner();
  Field x = mesh.makeField();
  auto res = la::gmres(
      S, ops0.op, b, x, {.rtol = 1e-8, .maxIterations = 300}, &Mg);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 40);  // strong preconditioning despite 10x jump
}

}  // namespace
}  // namespace pt
