#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "apps/fields.hpp"
#include "chns/params.hpp"
#include "chns/solver.hpp"
#include "fem/bc.hpp"
#include "fem/matvec.hpp"
#include "la/gmg.hpp"
#include "la/ksp.hpp"
#include "la/pc.hpp"
#include "octree/balance.hpp"
#include "support/thread_pool.hpp"

namespace pt {
namespace {

/// Dirichlet Poisson factory: each level discretizes -Laplace with the
/// boundary rows replaced by (scaled) identity.
template <int DIM>
la::GmgOpFactory<DIM> poissonFactory(std::deque<Field>& masks) {
  return [&masks](const Mesh<DIM>& mesh, int level) -> la::GmgLevelOps<DIM> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
      fem::stiffnessMatvec(mesh, x, y);
    };
    la::GmgLevelOps<DIM> ops;
    ops.op = fem::dirichletOp(mesh, mask, K);
    ops.diag = la::assembleDiagonalBlocks<DIM>(
        mesh, 1, [](const Octant<DIM>& oct, Real* Ae) {
          const auto& refK = fem::refStiffness<DIM>();
          const Real kscale = (DIM == 2) ? 1.0 : oct.physSize();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * kscale;
        });
    // Boundary rows act as identity; use unit diagonal there.
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
}

TEST(Gmg, HierarchyShrinksByLevel) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 4});
  ASSERT_GE(gmg.numLevels(), 3);
  for (int l = 1; l < gmg.numLevels(); ++l)
    EXPECT_LT(gmg.meshAt(l).globalElemCount(),
              gmg.meshAt(l - 1).globalElemCount());
  // Uniform 2D coarsening shrinks by ~4x per level.
  EXPECT_EQ(gmg.meshAt(1).globalElemCount(),
            gmg.meshAt(0).globalElemCount() / 4);
}

TEST(Gmg, VcycleReducesPoissonResidual) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 4});
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, masks[0], K);
  Field f = mesh.makeField(), fw = mesh.makeField();
  fem::setByPosition<2>(mesh, f, 1, [](const VecN<2>& p, Real* v) {
    v[0] = std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]);
  });
  fem::massMatvec(mesh, f, fw);
  fem::zeroMasked(mesh, masks[0], fw);
  // A few stationary V-cycle iterations must contract the residual hard.
  auto M = gmg.preconditioner();
  Field x = mesh.makeField(), r = mesh.makeField(), z = mesh.makeField(),
        Ax = mesh.makeField();
  A(x, Ax);
  S.sub(fw, Ax, r);
  const Real r0 = S.norm(r);
  for (int it = 0; it < 6; ++it) {
    M(r, z);
    S.axpy(x, 1.0, z);
    A(x, Ax);
    S.sub(fw, Ax, r);
  }
  EXPECT_LT(S.norm(r), 1e-3 * r0);  // > x1000 reduction in 6 cycles
}

TEST(Gmg, PreconditionerBeatsJacobiIterationCount) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(6));
  std::deque<Field> masks;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks), {.levels = 5});
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> K = [&mesh](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, masks[0], K);
  Field fw = mesh.makeField();
  {
    Field f = mesh.makeField();
    fem::setByPosition<2>(mesh, f, 1, [](const VecN<2>& p, Real* v) {
      v[0] = std::exp(p[0]) * (1 - p[1]);
    });
    fem::massMatvec(mesh, f, fw);
    fem::zeroMasked(mesh, masks[0], fw);
  }
  la::KspOptions opt{.rtol = 1e-9, .maxIterations = 600, .gmresRestart = 60};
  // Jacobi-preconditioned GMRES.
  Field diag = la::assembleDiagonalBlocks<2>(
      mesh, 1, [](const Octant<2>& oct, Real* Ae) {
        (void)oct;
        const auto& refK = fem::refStiffness<2>();
        for (std::size_t k = 0; k < refK.size(); ++k) Ae[k] = refK[k];
      });
  la::LinOp<Field> Mj = la::makeJacobi(mesh, 1, std::move(diag));
  Field xj = mesh.makeField();
  auto resJ = la::gmres(S, A, fw, xj, opt, &Mj);
  // GMG-preconditioned GMRES.
  la::Pc<Field> Mg = gmg.preconditioner();
  Field xg = mesh.makeField();
  auto resG = la::gmres(S, A, fw, xg, opt, Mg);
  EXPECT_TRUE(resJ.converged);
  EXPECT_TRUE(resG.converged);
  EXPECT_LT(resG.iterations, resJ.iterations / 3);  // level-independent-ish
  // Same solution.
  Field d = mesh.makeField();
  S.sub(xj, xg, d);
  EXPECT_LT(S.norm(d), 1e-6 * std::max(S.norm(xj), Real(1e-300)));
}

TEST(Gmg, VariableCoefficientPoissonOnAdaptiveMesh) {
  // The paper's actual target: the variable-density pressure Poisson
  // operator div( (1/rho(phi)) grad p ) on an adaptive interface mesh.
  sim::SimComm comm(2, sim::Machine::loopback());
  OctList<2> tree;
  buildTree<2>(
      Octant<2>::root(),
      [](const Octant<2>& o) {
        auto c = o.centerCoords();
        const Real d = std::abs(std::hypot(c[0] - 0.5, c[1] - 0.5) - 0.3);
        return d < 3.0 * o.physSize() ? Level(6) : Level(4);
      },
      tree);
  tree = balanceTree(tree);
  auto dist = DistTree<2>::fromGlobal(comm, tree);

  chns::Params P;
  P.rhoMinus = 0.1;  // 10x density contrast across the interface
  auto phiAt = [&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.3, 0.03);
  };
  std::deque<Field> masks;
  auto factory = [&](const Mesh<2>& mesh, int level) -> la::GmgLevelOps<2> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> W = [&mesh, &P, phiAt](const Field& x, Field& y) {
      fem::matvec<2>(mesh, x, y, 1,
                     [&](const Octant<2>& oct, const Real* in, Real* out) {
                       const Real coef =
                           1.0 / P.rho(phiAt(oct.centerCoords()));
                       Real tmp[4] = {};
                       fem::applyStiffness<2>(oct.physSize(), in, tmp);
                       for (int i = 0; i < 4; ++i) out[i] += coef * tmp[i];
                     });
    };
    la::GmgLevelOps<2> ops;
    ops.op = fem::dirichletOp(mesh, mask, W);
    ops.diag = la::assembleDiagonalBlocks<2>(
        mesh, 1, [&](const Octant<2>& oct, Real* Ae) {
          const Real coef = 1.0 / P.rho(phiAt(oct.centerCoords()));
          const auto& refK = fem::refStiffness<2>();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * coef;
        });
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
  la::Gmg<2> gmg(comm, dist, factory, {.levels = 3, .minLevel = 2});
  ASSERT_GE(gmg.numLevels(), 2);
  const Mesh<2>& mesh = gmg.meshAt(0);
  la::FieldSpace<2> S(mesh, 1);
  auto ops0 = factory(mesh, 0);
  Field b = mesh.makeField();
  fem::setByPosition<2>(mesh, b, 1, [](const VecN<2>& p, Real* v) {
    v[0] = p[0] - p[1];
  });
  fem::zeroMasked(mesh, masks[0], b);
  la::Pc<Field> Mg = gmg.preconditioner();
  Field x = mesh.makeField();
  auto res = la::gmres(
      S, ops0.op, b, x, {.rtol = 1e-8, .maxIterations = 300}, Mg);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 40);  // strong preconditioning despite 10x jump
}

/// 3D variable-coefficient factory on an adaptive (hanging-node) mesh:
/// div( (1/rho(phi)) grad p ) with Dirichlet boundary rows.
la::GmgOpFactory<3> rho3dFactory(const chns::Params& P,
                                 std::deque<Field>& masks) {
  auto phiAt = [](const VecN<3>& x) {
    return apps::dropPhi<3>(x, VecN<3>{{0.5, 0.5, 0.5}}, 0.3, 0.06);
  };
  return [&P, &masks, phiAt](const Mesh<3>& mesh,
                             int level) -> la::GmgLevelOps<3> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> W = [&mesh, &P, phiAt](const Field& x, Field& y) {
      fem::matvec<3>(mesh, x, y, 1,
                     [&](const Octant<3>& oct, const Real* in, Real* out) {
                       const Real coef =
                           1.0 / P.rho(phiAt(oct.centerCoords()));
                       Real tmp[8] = {};
                       fem::applyStiffness<3>(oct.physSize(), in, tmp);
                       for (int i = 0; i < 8; ++i) out[i] += coef * tmp[i];
                     });
    };
    la::GmgLevelOps<3> ops;
    ops.op = fem::dirichletOp(mesh, mask, W);
    ops.diag = la::assembleDiagonalBlocks<3>(
        mesh, 1, [&](const Octant<3>& oct, Real* Ae) {
          const Real coef = 1.0 / P.rho(phiAt(oct.centerCoords()));
          const auto& refK = fem::refStiffness<3>();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * oct.physSize() * coef;
        });
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
}

DistTree<3> adaptiveSphereTree(sim::SimComm& comm) {
  OctList<3> tree;
  buildTree<3>(
      Octant<3>::root(),
      [](const Octant<3>& o) {
        auto c = o.centerCoords();
        const Real d = std::abs(
            std::hypot(c[0] - 0.5, c[1] - 0.5, c[2] - 0.5) - 0.3);
        return d < 2.0 * o.physSize() ? Level(4) : Level(2);
      },
      tree);
  tree = balanceTree(tree);
  return DistTree<3>::fromGlobal(comm, tree);
}

TEST(Gmg, VariableCoefficientPoisson3DWithHangingNodes) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dist = adaptiveSphereTree(comm);
  chns::Params P;
  P.rhoMinus = 0.1;  // 10x density contrast
  std::deque<Field> masks;
  auto factory = rho3dFactory(P, masks);
  la::Gmg<3> gmg(comm, dist, factory, {.levels = 3, .minLevel = 1});
  ASSERT_GE(gmg.numLevels(), 2);
  const Mesh<3>& mesh = gmg.meshAt(0);
  la::FieldSpace<3> S(mesh, 1);
  auto ops0 = factory(mesh, 0);
  Field b = mesh.makeField();
  fem::setByPosition<3>(mesh, b, 1, [](const VecN<3>& p, Real* v) {
    v[0] = p[0] - p[1] + 0.5 * p[2];
  });
  fem::zeroMasked(mesh, masks[0], b);
  la::Pc<Field> Mg = gmg.preconditioner();
  Field x = mesh.makeField();
  auto res = la::gmres(
      S, ops0.op, b, x, {.rtol = 1e-8, .maxIterations = 300}, Mg);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 40);
}

/// 2D variable-coefficient Dirichlet Poisson factory with a density jump
/// across a circular interface (the pressure-Poisson shape).
la::GmgOpFactory<2> rho2dFactory(const chns::Params& P,
                                 std::deque<Field>& masks) {
  auto phiAt = [](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.3, 0.03);
  };
  return [&P, &masks, phiAt](const Mesh<2>& mesh,
                             int level) -> la::GmgLevelOps<2> {
    if (static_cast<int>(masks.size()) <= level) masks.resize(level + 1);
    masks[level] = fem::boundaryMask(mesh);
    const Field& mask = masks[level];
    la::LinOp<Field> W = [&mesh, &P, phiAt](const Field& x, Field& y) {
      fem::matvec<2>(mesh, x, y, 1,
                     [&](const Octant<2>& oct, const Real* in, Real* out) {
                       const Real coef =
                           1.0 / P.rho(phiAt(oct.centerCoords()));
                       Real tmp[4] = {};
                       fem::applyStiffness<2>(oct.physSize(), in, tmp);
                       for (int i = 0; i < 4; ++i) out[i] += coef * tmp[i];
                     });
    };
    la::GmgLevelOps<2> ops;
    ops.op = fem::dirichletOp(mesh, mask, W);
    ops.diag = la::assembleDiagonalBlocks<2>(
        mesh, 1, [&](const Octant<2>& oct, Real* Ae) {
          const Real coef = 1.0 / P.rho(phiAt(oct.centerCoords()));
          const auto& refK = fem::refStiffness<2>();
          for (std::size_t k = 0; k < refK.size(); ++k)
            Ae[k] = refK[k] * coef;
        });
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
        if (mask[r][i] != 0.0) ops.diag[r][i] = 1.0;
    return ops;
  };
}

TEST(Gmg, ChebyshevVsJacobiIterationComparison) {
  // Same operator + hierarchy, only the smoother differs. On the hard
  // interface problem (100x density contrast, level-7 adaptive mesh) the
  // fixed-omega Jacobi damping is mistuned for some levels while the
  // Chebyshev interval adapts to each level's estimated spectrum, so
  // Chebyshev must not lose on outer Krylov iterations. Everything here is
  // deterministic (simulated comm, serial reductions), so the comparison
  // is exact and reproducible.
  sim::SimComm comm(1, sim::Machine::loopback());
  OctList<2> t;
  buildTree<2>(
      Octant<2>::root(),
      [](const Octant<2>& o) {
        auto c = o.centerCoords();
        const Real d = std::abs(std::hypot(c[0] - 0.5, c[1] - 0.5) - 0.3);
        return d < 3.0 * o.physSize() ? Level(7) : Level(4);
      },
      t);
  t = balanceTree(t);
  auto dist = DistTree<2>::fromGlobal(comm, t);
  chns::Params P;
  P.rhoMinus = 0.01;  // 100x density contrast
  auto runSmoother = [&](la::GmgSmoother sm, Field& x) {
    std::deque<Field> masks;
    auto fac = rho2dFactory(P, masks);
    la::Gmg<2> gmg(comm, dist, fac,
                   {.levels = 4, .smoother = sm, .minLevel = 2});
    const Mesh<2>& mesh = gmg.meshAt(0);
    la::FieldSpace<2> S(mesh, 1);
    auto ops0 = fac(mesh, 0);
    Field b = mesh.makeField();
    fem::setByPosition<2>(mesh, b, 1, [](const VecN<2>& p, Real* v) {
      v[0] = p[0] - p[1];
    });
    fem::zeroMasked(mesh, masks[0], b);
    la::Pc<Field> M = gmg.preconditioner();
    x = mesh.makeField();
    return la::gmres(S, ops0.op, b, x,
                     {.rtol = 1e-9, .maxIterations = 300}, M);
  };
  Field xj, xc;
  auto resJ = runSmoother(la::GmgSmoother::kJacobi, xj);
  auto resC = runSmoother(la::GmgSmoother::kChebyshev, xc);
  EXPECT_TRUE(resJ.converged);
  EXPECT_TRUE(resC.converged);
  EXPECT_LE(resC.iterations, resJ.iterations);
  EXPECT_LT(resC.iterations, 40);
  EXPECT_LT(resJ.iterations, 40);
}

/// ndof=1 mass+stiffness coefficient-block factory routed through the
/// batched panel-GEMM engine (fem::matvecCoefBlocks) — the level-operator
/// path the CHNS solver uses.
template <int DIM>
la::GmgOpFactory<DIM> unitCoefBlockFactory() {
  return [](const Mesh<DIM>& mesh, int) -> la::GmgLevelOps<DIM> {
    auto cM =
        std::make_shared<sim::PerRank<std::vector<Real>>>(mesh.nRanks());
    auto cK =
        std::make_shared<sim::PerRank<std::vector<Real>>>(mesh.nRanks());
    for (int r = 0; r < mesh.nRanks(); ++r) {
      const std::size_t ne = mesh.rank(r).nElems();
      (*cM)[r].assign(ne, 1.0);
      (*cK)[r].assign(ne, 1.0);
    }
    return la::makeCoefBlockLevelOps<DIM>(mesh, 1, std::move(cM),
                                          std::move(cK));
  };
}

struct ThreadGuard {
  explicit ThreadGuard(int n) {
    support::ThreadPool::instance().setThreads(n);
  }
  ~ThreadGuard() { support::ThreadPool::instance().setThreads(1); }
};

TEST(Gmg, VcycleBitwiseDeterministicAcrossThreads) {
  sim::SimComm comm(2, sim::Machine::loopback());
  OctList<2> tree;
  buildTree<2>(
      Octant<2>::root(),
      [](const Octant<2>& o) {
        auto c = o.centerCoords();
        return std::hypot(c[0] - 0.4, c[1] - 0.6) < 0.3 ? Level(6)
                                                        : Level(4);
      },
      tree);
  tree = balanceTree(tree);
  auto dist = DistTree<2>::fromGlobal(comm, tree);
  auto hier = la::GmgHierarchy<2>::build(comm, dist, nullptr, 3, 1);
  Field r = hier->meshAt(0).makeField();
  fem::setByPosition<2>(hier->meshAt(0), r, 1,
                        [](const VecN<2>& p, Real* v) {
                          v[0] = std::sin(7 * p[0]) + std::cos(5 * p[1]);
                        });
  auto apply = [&](int threads) {
    ThreadGuard tg(threads);
    la::Gmg<2> gmg(comm, hier, unitCoefBlockFactory<2>(), {.levels = 3});
    Field z;
    gmg.apply(r, z);
    return z;
  };
  const Field z1 = apply(1);
  const Field z4 = apply(4);
  for (int rk = 0; rk < comm.size(); ++rk)
    EXPECT_EQ(z1[rk], z4[rk]) << "V-cycle not bitwise thread-invariant";
}

TEST(Gmg, CoarseSolveFailureThrowsTypedError) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  std::deque<Field> masks;
  obs::Registry reg;
  la::Gmg<2> gmg(comm, tree, poissonFactory<2>(masks),
                 {.levels = 3,
                  .coarseSolve = {.rtol = 1e-14, .maxIterations = 1}},
                 &reg);
  Field r = gmg.meshAt(0).makeField(), z;
  fem::setByPosition<2>(gmg.meshAt(0), r, 1, [](const VecN<2>& p, Real* v) {
    v[0] = p[0] * (1 - p[1]);
  });
  fem::zeroMasked(gmg.meshAt(0), masks[0], r);
  EXPECT_THROW(gmg.apply(r, z), la::GmgCoarseSolveError);
  EXPECT_GE(reg.counter("gmg.coarse_fail").value(), 1);
}

// ---- CHNS hierarchy caching -------------------------------------------------

TEST(GmgChns, HierarchyPreservedAcrossNoopRemeshes) {
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<2> opt;
  opt.params.Cn = 0.03;
  opt.dt = 1e-3;
  opt.blocksPerStep = 1;
  // Every element already sits at the target level -> remeshNow is a no-op.
  opt.coarseLevel = opt.interfaceLevel = opt.featureLevel = 4;
  opt.referenceLevel = 4;
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  chns::ChnsSolver<2> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  auto builds = [&] {
    return s.telemetry().metrics.counter("gmgHierarchyBuilds").value();
  };
  EXPECT_EQ(builds(), 0);  // lazy: nothing until the first solve
  s.step();
  EXPECT_EQ(builds(), 1);  // one hierarchy shared by CH/NS/PP
  s.remeshNow();
  s.remeshNow();
  EXPECT_EQ(s.noopRemeshes(), 2);
  s.step();
  EXPECT_EQ(builds(), 1) << "no-op remesh dropped the GMG hierarchy";
}

TEST(GmgChns, HierarchyRebuiltOnRealRemesh) {
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<2> opt;
  opt.params.Cn = 0.03;
  opt.dt = 1e-3;
  opt.blocksPerStep = 1;
  opt.remeshEvery = 1;
  opt.coarseLevel = 3;
  opt.interfaceLevel = 5;
  opt.featureLevel = 5;
  opt.referenceLevel = 5;
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  chns::ChnsSolver<2> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  const long r0 = s.meshRebuilds();
  s.step();
  s.step();
  ASSERT_GT(s.meshRebuilds(), r0);  // the drop forces a real remesh
  const auto builds =
      s.telemetry().metrics.counter("gmgHierarchyBuilds").value();
  // One build per mesh epoch that ran solves: the real remeshes dropped
  // the cached hierarchy, and it came back exactly once per new mesh.
  EXPECT_GT(builds, 1) << "real remesh did not invalidate the hierarchy";
  EXPECT_LE(builds, s.meshRebuilds() - r0 + 1)
      << "hierarchy rebuilt more than once per mesh";
}

}  // namespace
}  // namespace pt
