// Solver hot path (DESIGN.md §9): threaded vector kernels, pooled KSP
// workspaces, blocked BSR SpMV, factored block-Jacobi. The contracts under
// test are exact-equality contracts:
//   - pointwise vector ops are bit-identical at any thread count;
//   - reductions are deterministic at a fixed thread count;
//   - pooled workspaces reproduce fresh-allocation solves bitwise, steady
//     state allocates nothing, and clear() survives a remesh;
//   - blocked BSR SpMV and factored block-Jacobi match their generic /
//     unfactored references bitwise;
//   - the CHNS stepper produces identical histories with resource reuse on
//     and off, including across remeshes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "apps/fields.hpp"
#include "chns/solver.hpp"
#include "la/ksp.hpp"
#include "la/pc.hpp"
#include "la/seqmat.hpp"
#include "la/space.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

// Global allocation counter for the zero-steady-state-allocation test.
// Counting is toggled only around the measured call on the main thread.
// new/delete below are a matched malloc/free pair; GCC's pairing heuristic
// can't see that through the replaced globals.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<long> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_countAllocs.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace pt {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { support::ThreadPool::instance().setThreads(n); }
  ~ThreadGuard() { support::ThreadPool::instance().setThreads(1); }
};

/// Uniform mesh big enough that a single rank crosses kVecThreadMin even at
/// ndof = 1 (level 7 in 2D: 16641 nodes).
template <int DIM>
Mesh<DIM> bigMesh(sim::SimComm& comm, Level level = 7) {
  auto dt = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(level));
  return Mesh<DIM>::build(comm, dt);
}

Field randomField(const Mesh<2>& mesh, int ndof, unsigned seed) {
  Field f = mesh.makeField(ndof);
  Rng rng(seed);
  for (auto& rank : f)
    for (auto& v : rank) v = rng.uniform(-1, 1);
  return f;
}

// ---- Threaded vector kernels ------------------------------------------------

TEST(ThreadedVectorOps, PointwiseBitwiseIdenticalAcrossThreadCounts) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm);
  la::FieldSpace<2> S(mesh, 1);
  const Field a = randomField(mesh, 1, 11);
  const Field b = randomField(mesh, 1, 12);

  auto runAll = [&](int threads) {
    ThreadGuard tg(threads);
    Field y = a, s = S.zeros(), pw = S.zeros(), c = S.zeros();
    S.axpy(y, 0.37, b);
    S.aypx(y, -1.25, a);
    S.scale(y, 3.0);
    S.sub(a, b, s);
    S.pointwiseMult(a, b, pw);
    S.copy(y, c);
    Field z = y;
    S.setZero(z);
    for (std::size_t i = 0; i < z[0].size(); ++i) EXPECT_EQ(z[0][i], 0.0);
    return std::make_pair(std::move(y), std::make_pair(std::move(s),
                                                       std::move(pw)));
  };
  auto r1 = runAll(1);
  auto r4 = runAll(4);
  EXPECT_EQ(r1.first[0], r4.first[0]);
  EXPECT_EQ(r1.second.first[0], r4.second.first[0]);
  EXPECT_EQ(r1.second.second[0], r4.second.second[0]);
}

TEST(ThreadedVectorOps, ReductionsDeterministicAtFixedThreadCount) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm);
  la::FieldSpace<2> S(mesh, 1);
  const Field a = randomField(mesh, 1, 21);
  const Field b = randomField(mesh, 1, 22);

  const Real serial = S.dot(a, b);
  Real t4a, t4b;
  {
    ThreadGuard tg(4);
    t4a = S.dot(a, b);
    t4b = S.dot(a, b);
  }
  // Deterministic: same thread count -> identical bits, every time.
  EXPECT_EQ(t4a, t4b);
  // Partition-ordered combination may legitimately differ from the serial
  // association, but only at rounding level.
  EXPECT_NEAR(t4a, serial, 1e-12 * std::abs(serial) + 1e-14);
  // Ranks below the threshold always take the serial path: bit-identical.
  Mesh<2> small = bigMesh<2>(comm, 4);
  la::FieldSpace<2> Ss(small, 1);
  const Field sa = randomField(small, 1, 23);
  const Real ds = Ss.dot(sa, sa);
  {
    ThreadGuard tg(4);
    EXPECT_EQ(Ss.dot(sa, sa), ds);
  }
}

TEST(ThreadedVectorOps, OwnedSumMatchesDotWithOnes) {
  sim::SimComm comm(2, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 5);
  la::FieldSpace<2> S(mesh, 2);
  const Field f = randomField(mesh, 2, 31);
  Field ones = mesh.makeField(2);
  for (auto& rank : ones)
    for (auto& v : rank) v = 1.0;
  EXPECT_EQ(S.ownedSum(f), S.dot(ones, f));
}

TEST(ThreadedVectorOps, AxpyNorm2MatchesTwoPass) {
  sim::SimComm comm(2, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 5);
  la::FieldSpace<2> S(mesh, 2);
  const Field x = randomField(mesh, 2, 41);
  Field y1 = randomField(mesh, 2, 42);
  Field y2 = y1;
  const Real fused = S.axpyNorm2(y1, -0.7, x);
  S.axpy(y2, -0.7, x);
  const Real twoPass = S.dot(y2, y2);
  EXPECT_EQ(fused, twoPass);
  EXPECT_EQ(y1[0], y2[0]);
  EXPECT_EQ(y1[1], y2[1]);
}

// ---- KSP workspace pooling --------------------------------------------------

/// SPD diagonal operator for workspace tests: y_i = d_i x_i, d_i in [1, 2].
la::LinOp<Field> diagOp(const la::FieldSpace<2>& S, const Mesh<2>& mesh) {
  Field d = mesh.makeField(S.ndof());
  Rng rng(7);
  for (auto& rank : d)
    for (auto& v : rank) v = 1.0 + rng.uniform(0, 1);
  return [&S, d = std::move(d)](const Field& x, Field& y) {
    S.reshape(y);
    S.pointwiseMult(d, x, y);
  };
}

TEST(KspWorkspace, CgPooledMatchesFreshBitwise) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 5);
  la::FieldSpace<2> S(mesh, 1);
  auto A = diagOp(S, mesh);
  const Field b = randomField(mesh, 1, 51);
  la::KspOptions opt;
  opt.rtol = 1e-10;

  Field xFresh = S.zeros();
  auto resFresh = la::cg(S, A, b, xFresh, opt);

  la::KspWorkspace<Field> ws;
  Field xWarm = S.zeros();
  la::cg(S, A, b, xWarm, opt, nullptr, &ws);  // warm the pools
  Field xPooled = S.zeros();
  auto resPooled = la::cg(S, A, b, xPooled, opt, nullptr, &ws);

  EXPECT_EQ(resFresh.iterations, resPooled.iterations);
  EXPECT_EQ(resFresh.relResidual, resPooled.relResidual);
  EXPECT_EQ(xFresh[0], xPooled[0]);
}

TEST(KspWorkspace, GmresAndBicgstabPooledMatchFreshBitwise) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 5);
  la::FieldSpace<2> S(mesh, 1);
  auto A = diagOp(S, mesh);
  const Field b = randomField(mesh, 1, 61);
  la::KspOptions opt;
  opt.rtol = 1e-10;
  opt.gmresRestart = 5;  // force restarts so basis reuse is exercised

  la::KspWorkspace<Field> ws;
  Field x1 = S.zeros(), x2 = S.zeros(), x3 = S.zeros();
  auto f1 = la::gmres(S, A, b, x1, opt);
  la::gmres(S, A, b, x2, opt, nullptr, &ws);
  S.setZero(x2);
  auto p1 = la::gmres(S, A, b, x2, opt, nullptr, &ws);
  EXPECT_EQ(f1.iterations, p1.iterations);
  EXPECT_EQ(f1.relResidual, p1.relResidual);
  EXPECT_EQ(x1[0], x2[0]);

  // The same workspace then serves BiCGStab (pool high-water sizing).
  auto f2 = la::bicgstab(S, A, b, x3, opt);
  Field x4 = S.zeros();
  auto p2 = la::bicgstab(S, A, b, x4, opt, nullptr, &ws);
  EXPECT_EQ(f2.iterations, p2.iterations);
  EXPECT_EQ(x3[0], x4[0]);
}

TEST(KspWorkspace, CgSteadyStateAllocatesNothing) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 5);
  la::FieldSpace<2> S(mesh, 1);
  auto A = diagOp(S, mesh);
  const Field b = randomField(mesh, 1, 71);
  la::KspOptions opt;
  opt.rtol = 1e-10;
  la::KspWorkspace<Field> ws;
  Field x = S.zeros();
  la::cg(S, A, b, x, opt, nullptr, &ws);  // warm: pools + space scratch
  S.setZero(x);
  g_allocs.store(0);
  g_countAllocs.store(true);
  auto res = la::cg(S, A, b, x, opt, nullptr, &ws);
  g_countAllocs.store(false);
  EXPECT_GT(res.iterations, 1);
  EXPECT_EQ(g_allocs.load(), 0)
      << "steady-state CG with a warm workspace must not allocate";
}

TEST(KspWorkspace, ClearSurvivesRemesh) {
  sim::SimComm comm(1, sim::Machine::loopback());
  Mesh<2> meshA = bigMesh<2>(comm, 4);
  Mesh<2> meshB = bigMesh<2>(comm, 5);
  la::KspOptions opt;
  opt.rtol = 1e-10;
  la::KspWorkspace<Field> ws;
  {
    la::FieldSpace<2> S(meshA, 1);
    auto A = diagOp(S, meshA);
    const Field b = randomField(meshA, 1, 81);
    Field x = S.zeros();
    la::cg(S, A, b, x, opt, nullptr, &ws);
  }
  ws.clear();  // "remesh"
  la::FieldSpace<2> S(meshB, 1);
  auto A = diagOp(S, meshB);
  const Field b = randomField(meshB, 1, 82);
  Field xPooled = S.zeros(), xFresh = S.zeros();
  auto pooled = la::cg(S, A, b, xPooled, opt, nullptr, &ws);
  auto fresh = la::cg(S, A, b, xFresh, opt);
  EXPECT_EQ(pooled.iterations, fresh.iterations);
  EXPECT_EQ(xPooled[0], xFresh[0]);
}

// ---- Blocked BSR SpMV and factored block Jacobi -----------------------------

la::BsrMatrix randomBsr(int nb, int bs, unsigned seed) {
  la::BsrMatrix B(nb, nb, bs);
  Rng rng(seed);
  for (int r = 0; r < nb; ++r) {
    auto link = [&](int c) {
      if (c < 0 || c >= nb) return;
      for (int oi = 0; oi < bs; ++oi)
        for (int oj = 0; oj < bs; ++oj)
          B.setValue(r * bs + oi, c * bs + oj,
                     rng.uniform(-1, 1) + (r == c && oi == oj ? 6.0 : 0.0));
    };
    link(r - 1);
    link(r);
    link(r + 1);
  }
  B.assemblyEnd();
  return B;
}

TEST(BsrMatrix, BlockedSpmvMatchesGenericBitwise) {
  for (int bs : {1, 2, 3, 4, 5, 6}) {  // 1..5 unrolled, 6 generic dispatch
    la::BsrMatrix B = randomBsr(97, bs, 100 + bs);
    Rng rng(200 + bs);
    std::vector<Real> x(std::size_t(97) * bs);
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<Real> yBlocked, yGeneric;
    B.multiply(x, yBlocked);
    B.multiplyGeneric(x, yGeneric);
    EXPECT_EQ(yBlocked, yGeneric) << "bs=" << bs;
  }
}

TEST(BsrMatrix, AddBlockAssembledUpdatesInPlace) {
  la::BsrMatrix B = randomBsr(5, 2, 300);
  std::vector<Real> x(10, 1.0), y0, y1;
  B.multiply(x, y0);
  const Real blk[4] = {1.0, 0.0, 0.0, 1.0};
  B.addBlockAssembled(2, 2, blk);
  B.addValueAssembled(4, 4, 0.5);
  B.multiply(x, y1);
  EXPECT_EQ(y1[4], y0[4] + 1.0 + 0.5);
  EXPECT_EQ(y1[5], y0[5] + 1.0);
  EXPECT_EQ(y1[0], y0[0]);
  EXPECT_THROW(B.addValueAssembled(0, 8, 1.0), CheckError);  // off pattern
}

TEST(DenseFactor, FactoredSolveMatchesDenseSolveBitwise) {
  constexpr int n = 5;
  Rng rng(400);
  std::vector<Real> A(n * n);
  for (auto& v : A) v = rng.uniform(-1, 1);
  for (int d = 0; d < n; ++d) A[d * n + d] += 4.0;
  std::vector<Real> x0(n), x1(n);
  for (int i = 0; i < n; ++i) x0[i] = x1[i] = rng.uniform(-1, 1);
  la::denseSolve(n, A, x0.data());  // copies A internally
  std::vector<Real> F = A;
  int piv[n];
  la::denseFactor(n, F.data(), piv);
  la::denseSolveFactored(n, F.data(), piv, x1.data());
  EXPECT_EQ(x0, x1);
}

TEST(BlockJacobi, FactoredMatchesUnfactoredBitwise) {
  sim::SimComm comm(2, sim::Machine::loopback());
  Mesh<2> mesh = bigMesh<2>(comm, 4);
  const int ndof = 3;
  Field diag = mesh.makeField(ndof * ndof);
  Rng rng(500);
  for (int r = 0; r < mesh.nRanks(); ++r)
    for (std::size_t i = 0; i < mesh.rank(r).nNodes(); ++i)
      for (int a = 0; a < ndof; ++a)
        for (int b = 0; b < ndof; ++b)
          diag[r][i * ndof * ndof + a * ndof + b] =
              rng.uniform(-1, 1) + (a == b ? 5.0 : 0.0);
  auto factored = la::makeBlockJacobi(mesh, ndof, diag);
  auto legacy = la::makeBlockJacobiUnfactored(mesh, ndof, diag);
  const Field r = randomField(mesh, ndof, 501);
  Field z1 = mesh.makeField(ndof), z2 = mesh.makeField(ndof);
  factored(r, z1);
  legacy(r, z2);
  for (int rank = 0; rank < mesh.nRanks(); ++rank)
    EXPECT_EQ(z1[rank], z2[rank]) << "rank " << rank;
}

// ---- CHNS end-to-end: resource reuse is bitwise-neutral ---------------------

template <int DIM>
chns::ChnsSolver<DIM> makeDropSolver(sim::SimComm& comm, bool reuse,
                                     int remeshEvery, Level level) {
  chns::ChnsOptions<DIM> opt;
  opt.params.Cn = 0.03;
  opt.dt = 1e-3;
  opt.blocksPerStep = 1;
  opt.remeshEvery = remeshEvery;
  opt.reuseSolverResources = reuse;
  auto tree = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(level));
  chns::ChnsSolver<DIM> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<DIM>& x) {
    return apps::dropPhi<DIM>(x, VecN<DIM>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  return s;
}

TEST(ChnsSolverReuse, HistoriesIdenticalWithAndWithoutReuse) {
  sim::SimComm c1(1, sim::Machine::loopback());
  sim::SimComm c2(1, sim::Machine::loopback());
  auto base = makeDropSolver<2>(c1, false, 0, 5);
  auto pooled = makeDropSolver<2>(c2, true, 0, 5);
  for (int step = 0; step < 2; ++step) {
    base.step();
    pooled.step();
    EXPECT_EQ(base.lastChNewton_.iterations, pooled.lastChNewton_.iterations);
    EXPECT_EQ(base.lastChNewton_.totalLinearIterations,
              pooled.lastChNewton_.totalLinearIterations);
    EXPECT_EQ(base.lastChNewton_.residualNorm,
              pooled.lastChNewton_.residualNorm);
    EXPECT_EQ(base.lastNs_.iterations, pooled.lastNs_.iterations);
    EXPECT_EQ(base.lastNs_.relResidual, pooled.lastNs_.relResidual);
    EXPECT_EQ(base.lastPp_.iterations, pooled.lastPp_.iterations);
    EXPECT_EQ(base.lastVuIterations_, pooled.lastVuIterations_);
    for (int r = 0; r < base.mesh().nRanks(); ++r) {
      EXPECT_EQ(base.phi()[r], pooled.phi()[r]) << "step " << step;
      EXPECT_EQ(base.velocity()[r], pooled.velocity()[r]) << "step " << step;
      EXPECT_EQ(base.pressure()[r], pooled.pressure()[r]) << "step " << step;
    }
  }
}

TEST(ChnsSolverReuse, RemeshInvalidatesPooledResources) {
  sim::SimComm c1(1, sim::Machine::loopback());
  sim::SimComm c2(1, sim::Machine::loopback());
  // remeshEvery=1: every step rebuilds the mesh, so stale workspaces or
  // cached preconditioners would either crash (shape mismatch) or perturb
  // the iteration; identical histories prove the invalidation hook works.
  auto base = makeDropSolver<2>(c1, false, 1, 4);
  auto pooled = makeDropSolver<2>(c2, true, 1, 4);
  for (int step = 0; step < 2; ++step) {
    base.step();
    pooled.step();
    EXPECT_EQ(base.lastChNewton_.totalLinearIterations,
              pooled.lastChNewton_.totalLinearIterations);
    EXPECT_EQ(base.lastPp_.iterations, pooled.lastPp_.iterations);
    ASSERT_EQ(base.mesh().nRanks(), pooled.mesh().nRanks());
    for (int r = 0; r < base.mesh().nRanks(); ++r)
      EXPECT_EQ(base.phi()[r], pooled.phi()[r]) << "step " << step;
  }
}

TEST(ChnsSolverReuse, ThreadedStepMatchesSerialBelowThreshold) {
  // The drop workload at level 5 stays below kVecThreadMin, so a 4-thread
  // run must be bitwise identical to serial (threaded pointwise ops are
  // exact; reductions take the serial path below the threshold).
  sim::SimComm c1(1, sim::Machine::loopback());
  auto serial = makeDropSolver<2>(c1, true, 0, 5);
  serial.step();
  sim::SimComm c2(1, sim::Machine::loopback());
  ThreadGuard tg(4);
  auto threaded = makeDropSolver<2>(c2, true, 0, 5);
  threaded.step();
  EXPECT_EQ(serial.lastChNewton_.totalLinearIterations,
            threaded.lastChNewton_.totalLinearIterations);
  for (int r = 0; r < serial.mesh().nRanks(); ++r)
    EXPECT_EQ(serial.phi()[r], threaded.phi()[r]);
}

}  // namespace
}  // namespace pt
