#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fem/basis.hpp"
#include "fem/bc.hpp"
#include "fem/elem_ops.hpp"
#include "fem/layout.hpp"
#include "fem/matvec.hpp"
#include "la/ksp.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

// ---- Basis & quadrature ------------------------------------------------------

template <typename T>
class FemTyped : public ::testing::Test {};
struct D2 {
  static constexpr int dim = 2;
};
struct D3 {
  static constexpr int dim = 3;
};
using Dims = ::testing::Types<D2, D3>;
TYPED_TEST_SUITE(FemTyped, Dims);

TYPED_TEST(FemTyped, PartitionOfUnity) {
  constexpr int D = TypeParam::dim;
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    VecN<D> xi;
    for (int d = 0; d < D; ++d) xi[d] = rng.uniform();
    Real sum = 0;
    VecN<D> gsum;
    for (int i = 0; i < fem::kNodes<D>; ++i) {
      sum += fem::shape<D>(i, xi);
      gsum += fem::shapeGrad<D>(i, xi);
    }
    EXPECT_NEAR(sum, 1.0, 1e-14);
    EXPECT_NEAR(norm(gsum), 0.0, 1e-13);
  }
}

TYPED_TEST(FemTyped, KroneckerAtCorners) {
  constexpr int D = TypeParam::dim;
  for (int i = 0; i < fem::kNodes<D>; ++i)
    for (int j = 0; j < fem::kNodes<D>; ++j) {
      VecN<D> corner;
      for (int d = 0; d < D; ++d) corner[d] = (j >> d) & 1;
      EXPECT_NEAR(fem::shape<D>(i, corner), i == j ? 1.0 : 0.0, 1e-14);
    }
}

TYPED_TEST(FemTyped, GradMatchesFiniteDifference) {
  constexpr int D = TypeParam::dim;
  Rng rng(7);
  const Real h = 1e-6;
  for (int i = 0; i < fem::kNodes<D>; ++i) {
    VecN<D> xi;
    for (int d = 0; d < D; ++d) xi[d] = rng.uniform(0.1, 0.9);
    const VecN<D> g = fem::shapeGrad<D>(i, xi);
    for (int d = 0; d < D; ++d) {
      VecN<D> xp = xi, xm = xi;
      xp[d] += h;
      xm[d] -= h;
      const Real fd =
          (fem::shape<D>(i, xp) - fem::shape<D>(i, xm)) / (2 * h);
      EXPECT_NEAR(g[d], fd, 1e-8);
    }
  }
}

TYPED_TEST(FemTyped, QuadratureWeightsSumToOne) {
  constexpr int D = TypeParam::dim;
  const auto& q1 = fem::Quadrature<D, 1>::get();
  const auto& q2 = fem::Quadrature<D, 2>::get();
  const auto& q3 = fem::Quadrature<D, 3>::get();
  auto total = [](const auto& q) {
    Real s = 0;
    for (Real w : q.w) s += w;
    return s;
  };
  EXPECT_NEAR(total(q1), 1.0, 1e-14);
  EXPECT_NEAR(total(q2), 1.0, 1e-14);
  EXPECT_NEAR(total(q3), 1.0, 1e-14);
}

TYPED_TEST(FemTyped, QuadratureExactForCubics) {
  // 2-point Gauss per direction integrates x^3 exactly on [0,1].
  constexpr int D = TypeParam::dim;
  const auto& q = fem::Quadrature<D, 2>::get();
  Real integral = 0;
  for (int i = 0; i < fem::Quadrature<D, 2>::kPoints; ++i)
    integral += q.w[i] * std::pow(q.xi[i][0], 3.0);
  EXPECT_NEAR(integral, 0.25, 1e-14);
}

// ---- Elemental operators -----------------------------------------------------

TYPED_TEST(FemTyped, MassMatrixRowSumsAreVolumes) {
  constexpr int D = TypeParam::dim;
  const auto& m = fem::refMass<D>();
  Real total = 0;
  for (Real v : m) total += v;
  EXPECT_NEAR(total, 1.0, 1e-13);  // 1^T M 1 = |ref element|
  // Symmetry + positivity of the diagonal.
  for (int i = 0; i < fem::kNodes<D>; ++i) {
    EXPECT_GT(m[i * fem::kNodes<D> + i], 0.0);
    for (int j = 0; j < fem::kNodes<D>; ++j)
      EXPECT_NEAR(m[i * fem::kNodes<D> + j], m[j * fem::kNodes<D> + i],
                  1e-14);
  }
}

TYPED_TEST(FemTyped, StiffnessAnnihilatesConstantsRowwise) {
  constexpr int D = TypeParam::dim;
  const auto& k = fem::refStiffness<D>();
  for (int i = 0; i < fem::kNodes<D>; ++i) {
    Real rowSum = 0;
    for (int j = 0; j < fem::kNodes<D>; ++j)
      rowSum += k[i * fem::kNodes<D> + j];
    EXPECT_NEAR(rowSum, 0.0, 1e-13);
  }
}

TYPED_TEST(FemTyped, GeneralAssemblyMatchesClosedForms) {
  constexpr int D = TypeParam::dim;
  const Real h = 0.125;
  VecN<D> origin;
  for (int d = 0; d < D; ++d) origin[d] = 0.25;
  fem::ElemMat<D> M{}, K{};
  fem::assembleElemMat<D>(origin, h, M,
                          [](const fem::QPoint<D>& q, int i, int j) {
                            return q.N[i] * q.N[j];
                          });
  fem::assembleElemMat<D>(origin, h, K,
                          [](const fem::QPoint<D>& q, int i, int j) {
                            return dot(q.dN[i], q.dN[j]);
                          });
  // Compare against applyMass / applyStiffness on unit vectors.
  for (int j = 0; j < fem::kNodes<D>; ++j) {
    Real e[fem::kNodes<D>] = {};
    e[j] = 1.0;
    Real ym[fem::kNodes<D>] = {}, yk[fem::kNodes<D>] = {};
    fem::applyMass<D>(h, e, ym);
    fem::applyStiffness<D>(h, e, yk);
    for (int i = 0; i < fem::kNodes<D>; ++i) {
      EXPECT_NEAR(M[i * fem::kNodes<D> + j], ym[i], 1e-13);
      EXPECT_NEAR(K[i * fem::kNodes<D> + j], yk[i], 1e-13);
    }
  }
}

TYPED_TEST(FemTyped, EvalAndGradAtQ) {
  constexpr int D = TypeParam::dim;
  // u = 2 + 3 x0 (linear): value and gradient exact at quad points.
  const Real h = 0.5;
  VecN<D> origin{};
  fem::ElemVec<D> dummy{};
  fem::assembleElemVec<D>(origin, h, dummy, [&](const fem::QPoint<D>& q, int i) {
    Real u[fem::kNodes<D>];
    for (int n = 0; n < fem::kNodes<D>; ++n)
      u[n] = 2.0 + 3.0 * (origin[0] + (((n >> 0) & 1) ? h : 0.0));
    const Real val = fem::evalAtQ<D>(q, u);
    const VecN<D> g = fem::gradAtQ<D>(q, u);
    EXPECT_NEAR(val, 2.0 + 3.0 * q.pos[0], 1e-12);
    EXPECT_NEAR(g[0], 3.0, 1e-12);
    for (int d = 1; d < D; ++d) EXPECT_NEAR(g[d], 0.0, 1e-12);
    (void)i;
    return 0.0;
  });
}

// ---- zip / unzip layouts (paper Figs 2-3) ------------------------------------

class LayoutP : public ::testing::TestWithParam<int> {};

TEST_P(LayoutP, ZipUnzipVecRoundTrip) {
  const int ndof = GetParam();
  const int nodes = 8;
  Rng rng(11);
  std::vector<Real> orig(nodes * ndof), zipped(nodes * ndof),
      back(nodes * ndof);
  for (auto& v : orig) v = rng.uniform(-1, 1);
  fem::zipVec(orig.data(), zipped.data(), nodes, ndof);
  fem::unzipVec(zipped.data(), back.data(), nodes, ndof);
  EXPECT_EQ(orig, back);
  // zip really groups dofs contiguously.
  for (int d = 0; d < ndof; ++d)
    for (int i = 0; i < nodes; ++i)
      EXPECT_EQ(zipped[d * nodes + i], orig[i * ndof + d]);
}

TEST_P(LayoutP, ZipUnzipMatRoundTrip) {
  const int ndof = GetParam();
  const int nodes = 4;
  const int n = nodes * ndof;
  Rng rng(13);
  std::vector<Real> orig(n * n), panels(n * n), back(n * n);
  for (auto& v : orig) v = rng.uniform(-1, 1);
  fem::zipMat(orig.data(), panels.data(), nodes, ndof);
  fem::unzipMat(panels.data(), back.data(), nodes, ndof);
  EXPECT_EQ(orig, back);
  // Panel (di, dj) holds exactly the (dof_i, dof_j) operator block.
  for (int di = 0; di < ndof; ++di)
    for (int dj = 0; dj < ndof; ++dj)
      for (int i = 0; i < nodes; ++i)
        for (int j = 0; j < nodes; ++j)
          EXPECT_EQ(panels[(di * ndof + dj) * nodes * nodes + i * nodes + j],
                    orig[(i * ndof + di) * n + (j * ndof + dj)]);
}

INSTANTIATE_TEST_SUITE_P(Dofs, LayoutP, ::testing::Values(1, 2, 3, 4, 5));

TEST(Layout, GemvOperatorMatchesNaive2D) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Real h = rng.uniform(0.01, 0.5);
    Real u[4], yNaive[4] = {}, yGemv[4] = {};
    for (auto& v : u) v = rng.uniform(-1, 1);
    fem::applyMass<2>(h, u, yNaive);
    fem::applyStiffness<2>(h, u, yNaive);
    fem::applyGemvOperator<2>(h, 1.0, 1.0, u, yGemv);
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(yGemv[i], yNaive[i], 1e-13);
  }
}

TEST(Layout, GemvOperatorMatchesNaive3D) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const Real h = rng.uniform(0.01, 0.5);
    Real u[8], yNaive[8] = {}, yGemv[8] = {};
    for (auto& v : u) v = rng.uniform(-1, 1);
    fem::applyMass<3>(h, u, yNaive);
    fem::applyStiffness<3>(h, u, yNaive);
    fem::applyGemvOperator<3>(h, 1.0, 1.0, u, yGemv);
    for (int i = 0; i < 8; ++i) EXPECT_NEAR(yGemv[i], yNaive[i], 1e-13);
  }
}

TEST(Layout, GemmAssemblyMatchesClosedForms) {
  const Real h = 0.0625;
  for (int dim = 0; dim < 1; ++dim) {
    fem::ElemMat<3> gemm{};
    fem::assembleGemmOperator<3>(h, 2.5, 0.5, gemm.data());
    const auto& refM = fem::refMass<3>();
    const auto& refK = fem::refStiffness<3>();
    const Real mScale = 2.5 * h * h * h;
    const Real kScale = 0.5 * h;  // h^(D-2) = h in 3D
    for (std::size_t k = 0; k < gemm.size(); ++k)
      EXPECT_NEAR(gemm[k], refM[k] * mScale + refK[k] * kScale, 1e-13);
  }
}

// ---- Boundary-condition helpers ----------------------------------------------

TEST(Bc, BoundaryMaskMarksExactlyTheBoundary) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  auto mesh = Mesh<2>::build(comm, dt);
  Field mask = fem::boundaryMask(mesh);
  long boundary = 0;
  for (int r = 0; r < 2; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const auto k = rm.nodeKeys[li];
      const bool onBnd = k[0] == 0 || k[1] == 0 || k[0] == kMaxCoord ||
                         k[1] == kMaxCoord;
      EXPECT_EQ(mask[r][li] != 0.0, onBnd);
      if (onBnd && rm.nodeOwner[li] == r) ++boundary;
    }
  }
  EXPECT_EQ(boundary, 4 * 8);  // 9x9 grid: 32 boundary nodes
}

TEST(Bc, DirichletOpIsIdentityOnBoundary) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  auto mesh = Mesh<2>::build(comm, dt);
  Field mask = fem::boundaryMask(mesh);
  la::LinOp<Field> K = [&](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, mask, K);
  Field x = mesh.makeField(), y = mesh.makeField();
  fem::setByPosition<2>(mesh, x, 1, [](const VecN<2>& p, Real* v) {
    v[0] = std::sin(4 * p[0]) + p[1];
  });
  A(x, y);
  const auto& rm = mesh.rank(0);
  for (std::size_t li = 0; li < rm.nNodes(); ++li)
    if (mask[0][li] != 0.0) {
      EXPECT_DOUBLE_EQ(y[0][li], x[0][li]);
    }
}

TEST(Bc, LiftedRhsSolvesInhomogeneousProblem) {
  // -Laplace u = 0 with u = x on the boundary has solution u = x.
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto mesh = Mesh<2>::build(comm, dt);
  la::FieldSpace<2> S(mesh, 1);
  Field mask = fem::boundaryMask(mesh);
  la::LinOp<Field> K = [&](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, mask, K);
  Field g = mesh.makeField();
  fem::setByPosition<2>(mesh, g, 1,
                        [](const VecN<2>& p, Real* v) { v[0] = p[0]; });
  Field f = mesh.makeField();  // zero interior load
  Field rhs = fem::liftDirichletRhs(mesh, mask, K, f, g);
  Field u = mesh.makeField();
  auto res = la::cg(S, A, rhs, u, {.rtol = 1e-12, .maxIterations = 2000});
  EXPECT_TRUE(res.converged);
  for (int r = 0; r < 2; ++r) {
    const auto& rm = mesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      EXPECT_NEAR(u[r][li], nodeCoords(rm.nodeKeys[li])[0], 1e-9);
  }
}

// ---- matvec utilities ---------------------------------------------------------

TEST(Matvec, AssembleRhsMatchesMassApply) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto mesh = Mesh<2>::build(comm, dt);
  Field u = mesh.makeField(), a = mesh.makeField(), b = mesh.makeField();
  fem::setByPosition<2>(mesh, u, 1, [](const VecN<2>& p, Real* v) {
    v[0] = p[0] * p[0] - p[1];
  });
  fem::massMatvec(mesh, u, a);
  // Same quantity via assembleRhs with an explicit quadrature loop.
  const auto& quad = fem::Quadrature<2, 2>::get();
  const auto& bt = fem::BasisTable<2, 2>::get();
  std::vector<Real> uLoc(4);
  fem::assembleRhs<2>(
      mesh, b, 1,
      [&](int r, std::size_t e, const Octant<2>& oct, Real* out) {
        fem::gatherElem(mesh.rank(r), e, u[r], 1, uLoc.data());
        const Real h = oct.physSize();
        for (int q = 0; q < 4; ++q) {
          Real uq = 0;
          for (int i = 0; i < 4; ++i) uq += bt.N[q][i] * uLoc[i];
          for (int i = 0; i < 4; ++i)
            out[i] += quad.w[q] * h * h * uq * bt.N[q][i];
        }
      });
  for (int r = 0; r < 2; ++r)
    for (std::size_t i = 0; i < a[r].size(); ++i)
      EXPECT_NEAR(a[r][i], b[r][i], 1e-13);
}

TEST(Matvec, MultiDofBlockDiagonalEqualsScalarPerComponent) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  auto mesh = Mesh<2>::build(comm, dt);
  // A 2-dof operator that applies mass to each component independently
  // must act like the scalar mass on each dof slice.
  Field x = mesh.makeField(2), y = mesh.makeField(2);
  fem::setByPosition<2>(mesh, x, 2, [](const VecN<2>& p, Real* v) {
    v[0] = p[0];
    v[1] = 3 * p[1] - 1;
  });
  fem::matvec<2>(mesh, x, y, 2,
                 [](const Octant<2>& oct, const Real* in, Real* out) {
                   Real comp[4], res[4];
                   for (int d = 0; d < 2; ++d) {
                     for (int c = 0; c < 4; ++c) comp[c] = in[c * 2 + d];
                     std::fill(res, res + 4, 0.0);
                     fem::applyMass<2>(oct.physSize(), comp, res);
                     for (int c = 0; c < 4; ++c) out[c * 2 + d] += res[c];
                   }
                 });
  for (int d = 0; d < 2; ++d) {
    Field xs = mesh.makeField(), ys = mesh.makeField();
    for (std::size_t i = 0; i < mesh.rank(0).nNodes(); ++i)
      xs[0][i] = x[0][i * 2 + d];
    fem::massMatvec(mesh, xs, ys);
    for (std::size_t i = 0; i < mesh.rank(0).nNodes(); ++i)
      EXPECT_NEAR(y[0][i * 2 + d], ys[0][i], 1e-13);
  }
}

}  // namespace
}  // namespace pt
