#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "octree/hilbert.hpp"
#include "octree/tree.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

OctList<2> randomTree(Rng& rng, Level maxLevel, Real prob) {
  OctList<2> out;
  std::function<void(const Octant<2>&)> rec = [&](const Octant<2>& o) {
    if (o.level < maxLevel && rng.bernoulli(prob)) {
      for (int c = 0; c < 4; ++c) rec(o.child(c));
    } else {
      out.push_back(o);
    }
  };
  rec(Octant<2>::root());
  return out;
}

TEST(Hilbert, IndexIsABijectionOnSmallGrid) {
  // Check that distinct cells of an 8x8 block map to distinct, in-range
  // Hilbert indices (sampled at the top-left of the domain).
  std::set<std::uint64_t> seen;
  const std::uint32_t step = kMaxCoord / 8;
  for (std::uint32_t i = 0; i < 8; ++i)
    for (std::uint32_t j = 0; j < 8; ++j) {
      const auto d = hilbertIndex2d(i * step, j * step);
      EXPECT_TRUE(seen.insert(d).second);
    }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Hilbert, ConsecutiveUniformCellsAreFaceAdjacent) {
  // The defining Hilbert property: on a uniform grid, consecutive cells in
  // curve order share a face (Manhattan distance of anchors == one cell).
  for (Level L : {2, 3, 4, 5}) {
    OctList<2> grid = uniformTree<2>(L);
    std::sort(grid.begin(), grid.end(), HilbertLess{});
    const std::uint32_t h = kMaxCoord >> L;
    for (std::size_t i = 1; i < grid.size(); ++i) {
      const auto& a = grid[i - 1];
      const auto& b = grid[i];
      const std::uint64_t dx =
          a.x[0] > b.x[0] ? a.x[0] - b.x[0] : b.x[0] - a.x[0];
      const std::uint64_t dy =
          a.x[1] > b.x[1] ? a.x[1] - b.x[1] : b.x[1] - a.x[1];
      ASSERT_EQ(dx + dy, h) << "level " << int(L) << " pos " << i;
    }
  }
}

TEST(Hilbert, MortonOrderIsNotFaceAdjacent) {
  // The contrast that motivates Hilbert: Morton order takes diagonal jumps.
  OctList<2> grid = uniformTree<2>(3);  // already Morton-sorted
  const std::uint32_t h = kMaxCoord >> 3;
  int jumps = 0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const auto& a = grid[i - 1];
    const auto& b = grid[i];
    const std::uint64_t dx =
        a.x[0] > b.x[0] ? a.x[0] - b.x[0] : b.x[0] - a.x[0];
    const std::uint64_t dy =
        a.x[1] > b.x[1] ? a.x[1] - b.x[1] : b.x[1] - a.x[1];
    if (dx + dy != h) ++jumps;
  }
  EXPECT_GT(jumps, 0);
}

TEST(Hilbert, HierarchicalPreorderProperties) {
  Rng rng(3);
  OctList<2> leaves = randomTree(rng, 5, 0.5);
  OctList<2> all = leaves;
  // Add some ancestors to exercise ancestor-first.
  for (std::size_t i = 0; i < leaves.size(); i += 7)
    if (leaves[i].level > 0) all.push_back(leaves[i].parent());
  // Ancestor-first.
  for (const auto& o : all)
    if (o.level > 0) {
      EXPECT_TRUE(hilbertLess(o.parent(), o));
      EXPECT_FALSE(hilbertLess(o, o.parent()));
    }
  // Irreflexive + antisymmetric on samples.
  Rng pick(9);
  for (int t = 0; t < 500; ++t) {
    const auto& a = all[pick.uniformInt(0, all.size() - 1)];
    const auto& b = all[pick.uniformInt(0, all.size() - 1)];
    EXPECT_FALSE(hilbertLess(a, a));
    if (!(a == b)) {
      EXPECT_NE(hilbertLess(a, b), hilbertLess(b, a));
    }
  }
  // Transitivity on samples.
  for (int t = 0; t < 500; ++t) {
    const auto& a = all[pick.uniformInt(0, all.size() - 1)];
    const auto& b = all[pick.uniformInt(0, all.size() - 1)];
    const auto& c = all[pick.uniformInt(0, all.size() - 1)];
    if (hilbertLess(a, b) && hilbertLess(b, c)) {
      EXPECT_TRUE(hilbertLess(a, c));
    }
  }
}

TEST(Hilbert, HierarchyPropertyOfPaperSecIIC2c) {
  // "Let a, x, y be octants such that a is an ancestor of x but not of y.
  //  Then y < a <=> y < x." — required for the overlap-order machinery.
  Rng rng(17);
  OctList<2> leaves = randomTree(rng, 5, 0.5);
  Rng pick(23);
  for (int t = 0; t < 1000; ++t) {
    const auto& x = leaves[pick.uniformInt(0, leaves.size() - 1)];
    const auto& y = leaves[pick.uniformInt(0, leaves.size() - 1)];
    if (x.level == 0) continue;
    const Octant<2> a = x.ancestorAt(
        static_cast<Level>(pick.uniformInt(0, x.level - 1)));
    if (a.isAncestorOf(y)) continue;
    EXPECT_EQ(hilbertLess(y, a), hilbertLess(y, x));
    EXPECT_EQ(hilbertLess(a, y), hilbertLess(x, y));
  }
}

TEST(Hilbert, BetterLocalityThanMortonOnAdaptiveMeshes) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    OctList<2> leaves = randomTree(rng, 6, 0.5);
    if (leaves.size() < 16) continue;  // degenerate draw
    const Real hilbert = orderingLocality(leaves, HilbertLess{});
    const Real morton = orderingLocality(leaves, SfcLess<2>{});
    EXPECT_LT(hilbert, morton) << "trial " << trial;
  }
  // On a uniform grid Hilbert locality is exactly 1 (face neighbors).
  OctList<2> grid = uniformTree<2>(5);
  EXPECT_NEAR(orderingLocality(grid, HilbertLess{}), 1.0, 1e-12);
  EXPECT_GT(orderingLocality(grid, SfcLess<2>{}), 1.2);
}

TEST(Hilbert, PartitionSurfaceSmallerThanMorton) {
  // The ghost-layer consequence of locality: cut a Hilbert-sorted grid
  // into contiguous chunks; the number of cross-chunk face adjacencies
  // (ghost faces) is smaller than with Morton-sorted chunks.
  OctList<2> grid = uniformTree<2>(5);  // 1024 cells
  auto ghostFaces = [&](const OctList<2>& sorted, int parts) {
    const std::size_t chunk = sorted.size() / parts;
    auto partOf = [&](const Octant<2>& o) {
      for (std::size_t i = 0; i < sorted.size(); ++i)
        if (sorted[i] == o)
          return static_cast<int>(std::min<std::size_t>(i / chunk,
                                                        parts - 1));
      return -1;
    };
    long cross = 0;
    const std::uint32_t h = kMaxCoord >> 5;
    for (const auto& o : sorted) {
      const int po = partOf(o);
      // Right and top face neighbors only (each pair counted once).
      for (int d = 0; d < 2; ++d) {
        Octant<2> n = o;
        if (n.x[d] + h >= kMaxCoord) continue;
        n.x[d] += h;
        const int pn = partOf(n);
        if (pn >= 0 && pn != po) ++cross;
      }
    }
    return cross;
  };
  OctList<2> hilbertSorted = grid;
  std::sort(hilbertSorted.begin(), hilbertSorted.end(), HilbertLess{});
  // Power-of-2 chunk counts make Morton chunks aligned quadtree blocks
  // (equally compact); real partitions are not aligned — use 7 parts.
  const long hilbertCut = ghostFaces(hilbertSorted, 7);
  const long mortonCut = ghostFaces(grid, 7);  // grid is Morton-sorted
  EXPECT_LE(hilbertCut, mortonCut);
}

}  // namespace
}  // namespace pt
