#include <gtest/gtest.h>

#include <cmath>

#include "fem/bc.hpp"
#include "fem/matvec.hpp"
#include "la/ksp.hpp"
#include "la/newton.hpp"
#include "la/pc.hpp"
#include "la/seqmat.hpp"
#include "la/space.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        return std::abs(std::sqrt(r2) - 0.3) < 2.0 * o.physSize() ? fine
                                                                  : coarse;
      },
      tree);
  return balanceTree(tree);
}

template <int DIM>
Mesh<DIM> makeMesh(sim::SimComm& comm, Level coarse, Level fine) {
  auto dt = DistTree<DIM>::fromGlobal(comm, interfaceTree<DIM>(coarse, fine));
  return Mesh<DIM>::build(comm, dt);
}

// ---- Sequential CSR / BSR ---------------------------------------------------

TEST(CsrMatrix, AssemblyAndMultiply) {
  la::CsrMatrix A(3, 3);
  A.setValue(0, 0, 2.0);
  A.setValue(0, 1, -1.0);
  A.setValue(1, 1, 2.0);
  A.setValue(1, 0, -1.0);
  A.setValue(1, 2, -1.0);
  A.setValue(2, 2, 2.0);
  A.setValue(2, 1, -1.0);
  A.setValue(0, 0, 1.0);  // ADD accumulates: diag(0) becomes 3
  A.assemblyEnd();
  EXPECT_EQ(A.nnz(), 7u);
  EXPECT_DOUBLE_EQ(A.diagonal(0), 3.0);
  std::vector<Real> x{1, 2, 3}, y;
  A.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3 * 1 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1 + 4 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 6);
}

TEST(CsrMatrix, InsertModeOverwrites) {
  la::CsrMatrix A(2, 2);
  A.setValue(0, 0, 5.0);
  A.setValue(0, 0, 2.0, la::InsertMode::kInsert);
  A.assemblyEnd();
  EXPECT_DOUBLE_EQ(A.diagonal(0), 2.0);
}

TEST(CsrMatrix, SetAfterAssemblyThrows) {
  la::CsrMatrix A(2, 2);
  A.setValue(0, 0, 1.0);
  A.assemblyEnd();
  EXPECT_THROW(A.setValue(1, 1, 1.0), CheckError);
}

TEST(CsrMatrix, PatternReuse) {
  la::CsrMatrix A(2, 2);
  A.setValue(0, 0, 1.0);
  A.setValue(1, 1, 1.0);
  A.assemblyEnd();
  A.zeroRetainPattern();
  A.addValueAssembled(0, 0, 7.0);
  EXPECT_DOUBLE_EQ(A.diagonal(0), 7.0);
  EXPECT_DOUBLE_EQ(A.diagonal(1), 0.0);
  EXPECT_THROW(A.addValueAssembled(0, 1, 1.0), CheckError);
}

TEST(BsrMatrix, MatchesCsrOnRandomSystem) {
  Rng rng(7);
  const int nb = 12, bs = 3;
  la::CsrMatrix A(nb * bs, nb * bs);
  la::BsrMatrix B(nb, nb, bs);
  for (int trial = 0; trial < 200; ++trial) {
    const GlobalIdx i = rng.uniformInt(0, nb * bs - 1);
    const GlobalIdx j = rng.uniformInt(0, nb * bs - 1);
    const Real v = rng.uniform(-1, 1);
    A.setValue(i, j, v);
    B.setValue(i, j, v);
  }
  A.assemblyEnd();
  B.assemblyEnd();
  std::vector<Real> x(nb * bs), ya, yb;
  for (auto& v : x) v = rng.uniform(-1, 1);
  A.multiply(x, ya);
  B.multiply(x, yb);
  for (int i = 0; i < nb * bs; ++i) EXPECT_NEAR(ya[i], yb[i], 1e-13);
}

TEST(BsrMatrix, AddBlockAndDiagonalBlock) {
  la::BsrMatrix B(2, 2, 2);
  const Real blk[4] = {1, 2, 3, 4};
  B.addBlock(1, 1, blk);
  B.addBlock(1, 1, blk);
  B.assemblyEnd();
  Real d[4];
  B.diagonalBlock(1, d);
  EXPECT_DOUBLE_EQ(d[0], 2);
  EXPECT_DOUBLE_EQ(d[3], 8);
  B.diagonalBlock(0, d);
  EXPECT_DOUBLE_EQ(d[0], 0);
}

TEST(DenseSolve, SolvesRandomSystems) {
  Rng rng(3);
  for (int n = 1; n <= 5; ++n) {
    std::vector<Real> A(n * n);
    std::vector<Real> xTrue(n), b(n, 0.0);
    for (auto& v : A) v = rng.uniform(-1, 1);
    for (int i = 0; i < n; ++i) A[i * n + i] += n;  // diag dominance
    for (auto& v : xTrue) v = rng.uniform(-1, 1);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) b[i] += A[i * n + j] * xTrue[j];
    la::denseSolve(n, A, b.data());
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], xTrue[i], 1e-10);
  }
}

// ---- Krylov solvers on the mesh --------------------------------------------

struct SolverCase {
  int ranks;
};
class KspP : public ::testing::TestWithParam<SolverCase> {};

TEST_P(KspP, CgSolvesMassSystem) {
  sim::SimComm comm(GetParam().ranks, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 5);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> A = [&](const Field& x, Field& y) {
    fem::massMatvec(mesh, x, y);
  };
  Field xTrue = mesh.makeField();
  fem::setByPosition<2>(mesh, xTrue, 1, [](const VecN<2>& p, Real* v) {
    v[0] = std::sin(5 * p[0]) + p[1];
  });
  Field b = mesh.makeField();
  A(xTrue, b);
  Field x = mesh.makeField();
  auto res = la::cg(S, A, b, x, {.rtol = 1e-12, .maxIterations = 400});
  EXPECT_TRUE(res.converged);
  S.axpy(x, -1.0, xTrue);
  EXPECT_LT(S.norm(x), 1e-8);
}

TEST_P(KspP, JacobiPreconditionerReducesIterations) {
  sim::SimComm comm(GetParam().ranks, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 6);
  la::FieldSpace<2> S(mesh, 1);
  la::LinOp<Field> A = [&](const Field& x, Field& y) {
    fem::massMatvec(mesh, x, y);
  };
  Field diag = la::assembleDiagonalBlocks<2>(
      mesh, 1, [](const Octant<2>& oct, Real* Ae) {
        fem::ElemMat<2> M{};
        const auto& ref = fem::refMass<2>();
        const Real h2 = oct.physSize() * oct.physSize();
        for (std::size_t k = 0; k < M.size(); ++k) Ae[k] = ref[k] * h2;
      });
  la::LinOp<Field> M = la::makeJacobi(mesh, 1, std::move(diag));
  Field b = mesh.makeField();
  fem::setByPosition<2>(mesh, b, 1,
                        [](const VecN<2>& p, Real* v) { v[0] = p[0] * p[1]; });
  Field x0 = mesh.makeField(), x1 = mesh.makeField();
  auto plain = la::cg(S, A, b, x0, {.rtol = 1e-10, .maxIterations = 600});
  auto pc = la::cg(S, A, b, x1, {.rtol = 1e-10, .maxIterations = 600}, &M);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pc.converged);
  EXPECT_LE(pc.iterations, plain.iterations);
}

TEST_P(KspP, PoissonDirichletCgAndGmresAgree) {
  sim::SimComm comm(GetParam().ranks, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 3, 5);
  la::FieldSpace<2> S(mesh, 1);
  Field mask = fem::boundaryMask(mesh);
  la::LinOp<Field> K = [&](const Field& x, Field& y) {
    fem::stiffnessMatvec(mesh, x, y);
  };
  la::LinOp<Field> A = fem::dirichletOp(mesh, mask, K);
  // -Laplace u = f with u* = sin(pi x) sin(pi y), f = 2 pi^2 u*.
  auto exact = [](const VecN<2>& p) {
    return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]);
  };
  Field f = mesh.makeField(), fw = mesh.makeField();
  fem::setByPosition<2>(mesh, f, 1, [&](const VecN<2>& p, Real* v) {
    v[0] = 2 * M_PI * M_PI * exact(p);
  });
  // Weak rhs: M f.
  fem::massMatvec(mesh, f, fw);
  Field g = mesh.makeField();  // zero boundary data
  Field rhs = fem::liftDirichletRhs(mesh, mask, K, fw, g);
  Field xCg = mesh.makeField(), xGm = mesh.makeField(), xBi = mesh.makeField();
  auto r1 = la::cg(S, A, rhs, xCg, {.rtol = 1e-10, .maxIterations = 2000});
  auto r2 = la::gmres(S, A, rhs, xGm,
                      {.rtol = 1e-10, .maxIterations = 2000, .gmresRestart = 50});
  auto r3 =
      la::bicgstab(S, A, rhs, xBi, {.rtol = 1e-10, .maxIterations = 2000});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_TRUE(r3.converged);
  Field d = mesh.makeField();
  S.sub(xCg, xGm, d);
  EXPECT_LT(S.norm(d), 1e-6);
  S.sub(xCg, xBi, d);
  EXPECT_LT(S.norm(d), 1e-6);
  // Discretization error of the solution itself.
  EXPECT_LT(fem::l2Error<2>(mesh, xCg, exact), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Ranks, KspP,
                         ::testing::Values(SolverCase{1}, SolverCase{3}));

// Second-order convergence of the Poisson solve under uniform refinement —
// including meshes with hanging nodes.
TEST(Convergence, PoissonSecondOrder) {
  auto solveOn = [](Level coarse, Level fine) {
    sim::SimComm comm(2, sim::Machine::loopback());
    auto mesh = makeMesh<2>(comm, coarse, fine);
    la::FieldSpace<2> S(mesh, 1);
    Field mask = fem::boundaryMask(mesh);
    la::LinOp<Field> K = [&](const Field& x, Field& y) {
      fem::stiffnessMatvec(mesh, x, y);
    };
    la::LinOp<Field> A = fem::dirichletOp(mesh, mask, K);
    auto exact = [](const VecN<2>& p) {
      return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]);
    };
    Field f = mesh.makeField(), fw = mesh.makeField();
    fem::setByPosition<2>(mesh, f, 1, [&](const VecN<2>& p, Real* v) {
      v[0] = 2 * M_PI * M_PI * exact(p);
    });
    fem::massMatvec(mesh, f, fw);
    Field g = mesh.makeField();
    Field rhs = fem::liftDirichletRhs(mesh, mask, K, fw, g);
    Field x = mesh.makeField();
    auto r = la::cg(S, A, rhs, x, {.rtol = 1e-12, .maxIterations = 6000});
    EXPECT_TRUE(r.converged);
    return fem::l2Error<2>(mesh, x, exact);
  };
  const Real e1 = solveOn(4, 5);
  const Real e2 = solveOn(5, 6);
  const Real rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 1.5);  // asymptotically second-order (1.79 measured at
                         // these sizes; earlier pairs are preasymptotic)
}

// ---- Newton -----------------------------------------------------------------

TEST(Newton, SolvesNodewiseCubic) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 4);
  la::FieldSpace<2> S(mesh, 1);
  // F(u) = u + u^3 - b, pointwise. Solution exists and is unique.
  Field b = mesh.makeField();
  fem::setByPosition<2>(mesh, b, 1, [](const VecN<2>& p, Real* v) {
    v[0] = 2.0 * std::sin(3 * p[0]) + p[1];
  });
  auto residual = [&](const Field& u, Field& F) {
    for (int r = 0; r < mesh.nRanks(); ++r)
      for (std::size_t i = 0; i < u[r].size(); ++i)
        F[r][i] = u[r][i] + u[r][i] * u[r][i] * u[r][i] - b[r][i];
  };
  auto makeJ = [&](const Field& u) -> la::LinOp<Field> {
    return [&mesh, u](const Field& x, Field& y) {
      for (int r = 0; r < mesh.nRanks(); ++r)
        for (std::size_t i = 0; i < x[r].size(); ++i)
          y[r][i] = (1.0 + 3.0 * u[r][i] * u[r][i]) * x[r][i];
    };
  };
  Field u = mesh.makeField();
  auto res = la::newton<la::FieldSpace<2>>(S, u, residual, makeJ, nullptr,
                                           {.rtol = 1e-12, .atol = 1e-13});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 12);
  // Verify: u + u^3 == b.
  Field F = mesh.makeField();
  residual(u, F);
  EXPECT_LT(S.norm(F), 1e-10);
}

}  // namespace
}  // namespace pt
