// Golden tests for the planned / batched / threaded MATVEC engine against
// the naive reference, on meshes WITH hanging corners, plus plan-invariant
// and remesh-rebuild checks.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "amr/remesh.hpp"
#include "fem/matvec.hpp"
#include "fem/matvec_batched.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/thread_pool.hpp"

namespace pt {
namespace {

/// A balanced adaptive tree refined around a spherical interface — its
/// level jumps guarantee hanging corners.
template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        const Real dist = std::abs(std::sqrt(r2) - 0.3);
        return dist < 2.0 * o.physSize() ? fine : coarse;
      },
      tree);
  return balanceTree(tree);
}

template <int DIM>
Mesh<DIM> makeMesh(sim::SimComm& comm, Level coarse, Level fine) {
  auto dt = DistTree<DIM>::fromGlobal(comm, interfaceTree<DIM>(coarse, fine));
  return Mesh<DIM>::build(comm, dt);
}

/// Smooth, dof-dependent input field.
template <int DIM>
Field smoothInput(const Mesh<DIM>& mesh, int ndof) {
  Field x = mesh.makeField(ndof);
  fem::setByPosition<DIM>(mesh, x, ndof, [ndof](const VecN<DIM>& pos, Real* out) {
    Real s = 0;
    for (int d = 0; d < DIM; ++d) s += (d + 1.0) * pos[d];
    for (int d = 0; d < ndof; ++d)
      out[d] = std::sin(3.0 * s + d) + 0.25 * d;
  });
  return x;
}

/// Helmholtz-type elemental kernel (massCoef*M + stiffCoef*K per dof),
/// written against the closed-form reference operators.
template <int DIM>
void helmholtzKernel(const Octant<DIM>& oct, const Real* in, Real* out,
                     int ndof, Real massCoef, Real stiffCoef) {
  constexpr int kC = kNumChildren<DIM>;
  Real col[kC], res[kC];
  for (int d = 0; d < ndof; ++d) {
    for (int i = 0; i < kC; ++i) {
      col[i] = in[i * ndof + d];
      res[i] = 0.0;
    }
    fem::applyMass<DIM>(oct.physSize(), col, res);
    for (int i = 0; i < kC; ++i) out[i * ndof + d] += massCoef * res[i];
    for (int i = 0; i < kC; ++i) res[i] = 0.0;
    fem::applyStiffness<DIM>(oct.physSize(), col, res);
    for (int i = 0; i < kC; ++i) out[i * ndof + d] += stiffCoef * res[i];
  }
}

Real maxAbs(const Field& f) {
  Real m = 0;
  for (const auto& v : f)
    for (Real x : v) m = std::max(m, std::abs(x));
  return m;
}

Real maxDiff(const Field& a, const Field& b) {
  Real m = 0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].size(), b[r].size());
    for (std::size_t i = 0; i < a[r].size(); ++i)
      m = std::max(m, std::abs(a[r][i] - b[r][i]));
  }
  return m;
}

// ---- Plan invariants --------------------------------------------------------

template <int DIM>
void checkPlanInvariants(const Mesh<DIM>& mesh) {
  constexpr int kC = kNumChildren<DIM>;
  for (int r = 0; r < mesh.nRanks(); ++r) {
    const RankMesh<DIM>& rm = mesh.rank(r);
    const ElemPlan& plan = rm.plan;
    ASSERT_EQ(plan.isPure.size(), rm.nElems());
    ASSERT_EQ(plan.slot.size(), rm.nElems());
    EXPECT_EQ(plan.nPure() + plan.nHanging(), rm.nElems());
    EXPECT_EQ(plan.pureNodes.size(), plan.nPure() * kC);
    // Purity matches the support structure; pureNodes match the supports.
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      bool pure = true;
      for (int c = 0; c < kC; ++c) {
        const auto lo = rm.cornerOffset[e * kC + c];
        const auto hi = rm.cornerOffset[e * kC + c + 1];
        pure = pure && (hi - lo == 1) && rm.supports[lo].weight == 1.0;
      }
      EXPECT_EQ(static_cast<bool>(plan.isPure[e]), pure);
      if (plan.isPure[e]) {
        const std::uint32_t slot = plan.slot[e];
        EXPECT_EQ(plan.pureElems[slot], e);
        for (int c = 0; c < kC; ++c)
          EXPECT_EQ(plan.pureNodes[slot * kC + c],
                    rm.supports[rm.cornerOffset[e * kC + c]].node);
      } else {
        EXPECT_EQ(plan.hangingElems[plan.slot[e]], e);
      }
    }
    // Batches cover pureElems exactly, in order, uniform level, bounded.
    std::size_t covered = 0;
    for (std::size_t b = 0; b < plan.batches.size(); ++b) {
      const ElemPlanBatch& batch = plan.batches[b];
      EXPECT_EQ(batch.begin, covered);
      ASSERT_GT(batch.end, batch.begin);
      EXPECT_LE(batch.end - batch.begin, kMatvecBatch);
      for (std::uint32_t i = batch.begin; i < batch.end; ++i) {
        EXPECT_EQ(rm.elems[plan.pureElems[i]].level, batch.level);
        EXPECT_EQ(plan.batchOf[i], b);
      }
      covered = batch.end;
    }
    EXPECT_EQ(covered, plan.nPure());
  }
}

TEST(MatvecPlan, InvariantsOnAdaptiveMesh) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto mesh = makeMesh<3>(comm, 1, 4);
  checkPlanInvariants(mesh);
  // The mesh must actually exercise the hanging path.
  std::size_t hanging = 0;
  for (int r = 0; r < mesh.nRanks(); ++r)
    hanging += mesh.rank(r).plan.nHanging();
  EXPECT_GT(hanging, 0u);
}

TEST(MatvecPlan, Invariants2D) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 5);
  checkPlanInvariants(mesh);
}

// ---- Golden: planned engine vs naive reference ------------------------------

template <int DIM>
void goldenPlannedVsNaive(int p, int ndof) {
  sim::SimComm comm(p, sim::Machine::loopback());
  auto mesh = makeMesh<DIM>(comm, DIM == 3 ? 1 : 2, 4);
  const Real massCoef = 1.3, stiffCoef = 0.7;
  Field x = smoothInput(mesh, ndof);

  Field yNaive = mesh.makeField(ndof);
  fem::matvecNaive<DIM>(mesh, x, yNaive, ndof,
                        [&](const Octant<DIM>& oct, const Real* in, Real* out) {
                          helmholtzKernel<DIM>(oct, in, out, ndof, massCoef,
                                               stiffCoef);
                        });

  // Planned per-element engine: bit-identical to the naive reference (same
  // FP ops in the same order; the pure fast path drops only exact
  // 0 + 1.0*x no-ops).
  Field yPlanned = mesh.makeField(ndof);
  fem::matvec<DIM>(mesh, x, yPlanned, ndof,
                   [&](const Octant<DIM>& oct, const Real* in, Real* out) {
                     helmholtzKernel<DIM>(oct, in, out, ndof, massCoef,
                                          stiffCoef);
                   });
  EXPECT_EQ(maxDiff(yNaive, yPlanned), 0.0);

  // Batched GEMM engine: same operator, reassociated FP -> roundoff-level
  // agreement.
  Field yBatched = mesh.makeField(ndof);
  fem::matvecUniform<DIM>(mesh, x, yBatched, ndof, massCoef, stiffCoef);
  const Real scale = std::max(Real(1), maxAbs(yNaive));
  EXPECT_LE(maxDiff(yNaive, yBatched) / scale, 1e-13);
}

TEST(MatvecPlan, Golden3DScalarSerial) { goldenPlannedVsNaive<3>(1, 1); }
TEST(MatvecPlan, Golden3DNdof5Parallel) { goldenPlannedVsNaive<3>(4, 5); }
TEST(MatvecPlan, Golden2DNdof5) { goldenPlannedVsNaive<2>(2, 5); }

// ---- Threading: 4 threads vs 1 ---------------------------------------------

TEST(MatvecPlan, ThreadedMatchesSerial) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto mesh = makeMesh<3>(comm, 1, 4);
  const int ndof = 5;
  const Real massCoef = 1.3, stiffCoef = 0.7;
  Field x = smoothInput(mesh, ndof);
  auto kernel = [&](const Octant<3>& oct, const Real* in, Real* out) {
    helmholtzKernel<3>(oct, in, out, ndof, massCoef, stiffCoef);
  };

  auto& pool = support::ThreadPool::instance();
  Field y1 = mesh.makeField(ndof), y1b = mesh.makeField(ndof);
  pool.setThreads(1);
  fem::matvec<3>(mesh, x, y1, ndof, kernel);
  fem::matvecUniform<3>(mesh, x, y1b, ndof, massCoef, stiffCoef);

  Field y4 = mesh.makeField(ndof), y4b = mesh.makeField(ndof);
  pool.setThreads(4);
  fem::matvec<3>(mesh, x, y4, ndof, kernel);
  fem::matvecUniform<3>(mesh, x, y4b, ndof, massCoef, stiffCoef);
  pool.setThreads(1);

  // Per-element engine: bit-identical across thread counts (windowed
  // compute, sequential element-order scatter).
  EXPECT_EQ(maxDiff(y1, y4), 0.0);
  // Batched engine: partition-private reduction reassociates -> 1e-13.
  const Real scale = std::max(Real(1), maxAbs(y1b));
  EXPECT_LE(maxDiff(y1b, y4b) / scale, 1e-13);
}

// ---- Pool lifecycle ---------------------------------------------------------

#ifdef PT_THREADS

// Regression: stopWorkers() bumps the job generation, so workers spawned by
// a later setThreads() used to wake on the stale bump, run a null job, and
// corrupt the pending-part count — releasing a subsequent parallelFor before
// all partitions finished. Cycle the pool down and back up repeatedly and
// verify every index is processed exactly once per call.
TEST(ThreadPool, SurvivesStopStartCycles) {
  auto& pool = support::ThreadPool::instance();
  constexpr std::size_t kN = 20000;
  for (int cycle = 0; cycle < 3; ++cycle) {
    pool.setThreads(4);
    std::vector<int> hits(kN, 0);
    for (int rep = 0; rep < 20; ++rep)
      pool.parallelFor(kN, [&](int, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i] += 1;
      });
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 20);
    pool.setThreads(1);
  }
}

// Exceptions from any partition (worker or caller) are rethrown on the
// coordinating thread after the join barrier, and the pool stays usable.
TEST(ThreadPool, PartitionExceptionPropagates) {
  auto& pool = support::ThreadPool::instance();
  pool.setThreads(4);
  for (int throwingPart : {0, 2}) {  // caller-side and worker-side
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](int part, std::size_t, std::size_t) {
                           if (part == throwingPart)
                             throw std::runtime_error("boom");
                         }),
        std::runtime_error);
  }
  std::vector<char> seen(100, 0);
  pool.parallelFor(seen.size(), [&](int, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) seen[i] = 1;
  });
  for (char c : seen) EXPECT_EQ(c, 1);
  pool.setThreads(1);
}

#endif  // PT_THREADS

// ---- Remesh rebuilds plans --------------------------------------------------

TEST(MatvecPlan, RebuiltAfterRemesh) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, interfaceTree<2>(2, 4));
  auto mesh = Mesh<2>::build(comm, dt);
  checkPlanInvariants(mesh);

  // Refine around a different interface (a shifted sphere) and coarsen the
  // rest — the new mesh has a different pure/hanging split.
  sim::PerRank<std::vector<Level>> want(comm.size());
  for (int r = 0; r < comm.size(); ++r) {
    const auto& leaves = dt.localOf(r);
    want[r].resize(leaves.size());
    for (std::size_t e = 0; e < leaves.size(); ++e) {
      auto c = leaves[e].centerCoords();
      const Real dx = c[0] - 0.3, dy = c[1] - 0.7;
      const Real dist = std::abs(std::sqrt(dx * dx + dy * dy) - 0.2);
      want[r][e] = dist < 2.0 * leaves[e].physSize() ? 5 : 2;
    }
  }
  auto newTree = remesh(dt, want);
  auto newMesh = Mesh<2>::build(comm, newTree);
  checkPlanInvariants(newMesh);

  // And the planned engine still matches naive on the new mesh.
  const int ndof = 2;
  Field x = smoothInput(newMesh, ndof);
  Field yn = newMesh.makeField(ndof), yp = newMesh.makeField(ndof);
  auto kfn = [&](const Octant<2>& oct, const Real* in, Real* out) {
    helmholtzKernel<2>(oct, in, out, ndof, 1.0, 1.0);
  };
  fem::matvecNaive<2>(newMesh, x, yn, ndof, kfn);
  fem::matvec<2>(newMesh, x, yp, ndof, kfn);
  EXPECT_EQ(maxDiff(yn, yp), 0.0);
}

}  // namespace
}  // namespace pt
