// Split-phase communication (DESIGN.md §15): exchange clock-credit
// semantics, ghost/accumulate epoch edge cases, bitwise identity of the
// overlap MATVEC engines and async transfer epoch against the blocking
// paths, and solver-history identity with commOverlap on vs off.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "apps/fields.hpp"
#include "chns/solver.hpp"
#include "fem/matvec.hpp"
#include "fem/matvec_batched.hpp"
#include "intergrid/transfer.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/thread_pool.hpp"

namespace pt {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { support::ThreadPool::instance().setThreads(n); }
  ~ThreadGuard() { support::ThreadPool::instance().setThreads(1); }
};

/// A balanced adaptive tree refined around a spherical interface — its
/// level jumps guarantee hanging corners.
template <int DIM>
OctList<DIM> interfaceTree(Level coarse, Level fine) {
  OctList<DIM> tree;
  buildTree<DIM>(
      Octant<DIM>::root(),
      [=](const Octant<DIM>& o) {
        auto c = o.centerCoords();
        Real r2 = 0;
        for (int d = 0; d < DIM; ++d) r2 += (c[d] - 0.5) * (c[d] - 0.5);
        const Real dist = std::abs(std::sqrt(r2) - 0.3);
        return dist < 2.0 * o.physSize() ? fine : coarse;
      },
      tree);
  return balanceTree(tree);
}

template <int DIM>
Mesh<DIM> makeMesh(sim::SimComm& comm, Level coarse, Level fine) {
  auto dt = DistTree<DIM>::fromGlobal(comm, interfaceTree<DIM>(coarse, fine));
  return Mesh<DIM>::build(comm, dt);
}

template <int DIM>
Field smoothInput(const Mesh<DIM>& mesh, int ndof) {
  Field x = mesh.makeField(ndof);
  fem::setByPosition<DIM>(mesh, x, ndof,
                          [ndof](const VecN<DIM>& pos, Real* out) {
    Real s = 0;
    for (int d = 0; d < DIM; ++d) s += (d + 1.0) * pos[d];
    for (int d = 0; d < ndof; ++d) out[d] = std::sin(3.0 * s + d) + 0.25 * d;
  });
  return x;
}

/// Helmholtz-type elemental kernel, dof-blocked. Engine contract: `out`
/// arrives zeroed and the kernel accumulates into it; applyMass and
/// applyStiffness likewise add into their output.
template <int DIM>
void helmholtzKernel(const Octant<DIM>& oct, const Real* in, Real* out,
                     int ndof) {
  constexpr int kC = kNumChildren<DIM>;
  Real tin[kC], tm[kC], tk[kC];
  for (int d = 0; d < ndof; ++d) {
    for (int c = 0; c < kC; ++c) {
      tin[c] = in[c * ndof + d];
      tm[c] = 0.0;
      tk[c] = 0.0;
    }
    fem::applyMass<DIM>(oct.physSize(), tin, tm);
    fem::applyStiffness<DIM>(oct.physSize(), tin, tk);
    for (int c = 0; c < kC; ++c)
      out[c * ndof + d] += tm[c] + (1.0 + 0.5 * d) * tk[c];
  }
}

void expectFieldsEq(const Field& a, const Field& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t r = 0; r < a.size(); ++r)
    EXPECT_EQ(a[r], b[r]) << what << " rank " << r;
}

// ---- Split-phase exchange clock semantics -----------------------------------

sim::SparseSends<Real> ringSends(int p, int n) {
  sim::SparseSends<Real> sends(p);
  for (int r = 0; r < p; ++r)
    sends[r].emplace_back((r + 1) % p, std::vector<Real>(n, Real(r)));
  return sends;
}

TEST(SplitPhaseComm, BlockingEqualsStartFinishBackToBack) {
  sim::Machine m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  m.computeRate = 1e9;
  const auto sends = ringSends(4, 16);

  sim::SimComm c1(4, m);
  c1.sparseExchange(sends);
  const double tBlocking = c1.time();

  sim::SimComm c2(4, m);
  auto h = c2.exchangeStart(sends);
  c2.exchangeFinish(h);
  EXPECT_DOUBLE_EQ(c2.time(), tBlocking);
  EXPECT_FALSE(h.open());
  // Both paths complete collectively exactly once.
  EXPECT_EQ(c1.stats().collectives, c2.stats().collectives);
}

TEST(SplitPhaseComm, ComputeChargedInFlightHidesUnderExchange) {
  sim::Machine m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  m.computeRate = 1e9;
  const int p = 4;
  const auto sends = ringSends(p, 16);
  // Ring of 16 doubles: alpha*(1 dest + 1 src + 2*log2(4)) + beta*256 B.
  const double cost = m.alpha * 6.0 + m.beta * 256.0;

  sim::SimComm comm(p, m);
  auto h1 = comm.exchangeStart(sends);
  for (int r = 0; r < p; ++r) comm.chargeWork(r, 3000.0);  // 3 us < cost
  comm.exchangeFinish(h1);
  EXPECT_DOUBLE_EQ(comm.time(), cost);  // fully hidden
  EXPECT_DOUBLE_EQ(comm.stats().overlapHidden, 3000.0 / m.computeRate);

  const double t1 = comm.time();
  auto h2 = comm.exchangeStart(sends);
  for (int r = 0; r < p; ++r) comm.chargeWork(r, 10000.0);  // 10 us > cost
  comm.exchangeFinish(h2);
  // Compute dominates: the exchange is free, its full cost was hidden.
  EXPECT_DOUBLE_EQ(comm.time(), t1 + 10000.0 / m.computeRate);
  EXPECT_DOUBLE_EQ(comm.stats().overlapHidden,
                   3000.0 / m.computeRate + cost);
  EXPECT_EQ(comm.stats().splitExchanges, 2);
}

TEST(SplitPhaseComm, PayloadsIdenticalToBlocking) {
  const auto sends = ringSends(3, 8);
  sim::SimComm c1(3, sim::Machine::loopback());
  sim::SimComm c2(3, sim::Machine::loopback());
  auto blocking = c1.sparseExchange(sends);
  auto h = c2.exchangeStart(sends);
  auto split = c2.exchangeFinish(h);
  ASSERT_EQ(blocking.size(), split.size());
  for (std::size_t r = 0; r < blocking.size(); ++r)
    EXPECT_EQ(blocking[r], split[r]);
}

// ---- Ghost-read / accumulate epochs -----------------------------------------

template <int DIM>
void checkGhostEpochs(sim::SimComm& comm, const Mesh<DIM>& mesh, int ndof) {
  // Distinct deterministic per-entry values so interleaving mistakes show.
  Field f0 = smoothInput(mesh, ndof);
  Field f1 = f0;
  mesh.ghostRead(f0, ndof);
  auto hg = mesh.ghostReadStart(f1, ndof);
  mesh.ghostReadFinish(hg, f1, ndof);
  expectFieldsEq(f0, f1, "ghostRead split vs blocking");

  Field a0 = smoothInput(mesh, ndof);
  Field a1 = a0;
  mesh.accumulate(a0, ndof);
  auto ha = mesh.accumulateStart(a1, ndof);
  mesh.accumulateFinish(ha, a1, ndof);
  expectFieldsEq(a0, a1, "accumulate split vs blocking");
  (void)comm;
}

TEST(GhostSplitPhase, SingleRankMeshNoNeighbors) {
  sim::SimComm comm(1, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 4);
  checkGhostEpochs(comm, mesh, 1);
  checkGhostEpochs(comm, mesh, 3);
}

TEST(GhostSplitPhase, MultiRankInterleavedDofs) {
  for (int threads : {1, 4}) {
    ThreadGuard tg(threads);
    sim::SimComm comm(4, sim::Machine::loopback());
    auto mesh = makeMesh<2>(comm, 2, 5);
    checkGhostEpochs(comm, mesh, 1);
    checkGhostEpochs(comm, mesh, 3);
  }
}

TEST(GhostSplitPhase, EmptyRankHasZeroGhosts) {
  // More ranks than elements: the tail ranks own nothing and exchange
  // nothing; the split-phase epoch must pass through them untouched.
  sim::SimComm comm(5, sim::Machine::loopback());
  auto dt = DistTree<2>::fromGlobal(comm, uniformTree<2>(1));  // 4 elements
  auto mesh = Mesh<2>::build(comm, dt);
  bool sawEmpty = false;
  for (int r = 0; r < comm.size(); ++r)
    sawEmpty = sawEmpty || mesh.rank(r).nElems() == 0;
  EXPECT_TRUE(sawEmpty);
  checkGhostEpochs(comm, mesh, 1);
  checkGhostEpochs(comm, mesh, 2);
}

// ---- MATVEC engines: overlap on/off bitwise identity ------------------------

template <int DIM>
void checkIndexedOverlap(int p, int ndof) {
  sim::SimComm comm(p, sim::Machine::loopback());
  auto mesh = makeMesh<DIM>(comm, 2, 5);
  Field x = smoothInput(mesh, ndof);
  auto kernel = [ndof](const Octant<DIM>& oct, const Real* in, Real* out) {
    helmholtzKernel<DIM>(oct, in, out, ndof);
  };

  comm.setOverlapEnabled(false);
  comm.resetClocks();
  const long collBefore = comm.stats().collectives;
  Field y0 = mesh.makeField(ndof);
  fem::matvec<DIM>(mesh, x, y0, ndof, kernel);
  const double tBlocking = comm.time();
  const long collBlocking = comm.stats().collectives - collBefore;

  comm.setOverlapEnabled(true);
  comm.resetClocks();
  const long collMid = comm.stats().collectives;
  Field y1 = mesh.makeField(ndof);
  fem::matvec<DIM>(mesh, x, y1, ndof, kernel);
  const double tOverlap = comm.time();
  const long collOverlap = comm.stats().collectives - collMid;

  expectFieldsEq(y0, y1, "matvecIndexed overlap vs blocking");
  EXPECT_LE(tOverlap, tBlocking * (1.0 + 1e-12));
  // Same number of collective completions either way (split accumulate =
  // finish + ghostRead, blocking = exchange + ghostRead).
  EXPECT_EQ(collOverlap, collBlocking);
  if (p > 1) EXPECT_GT(comm.stats().overlapHidden, 0.0);
}

TEST(MatvecOverlap, IndexedBitwiseAcrossThreads2D) {
  for (int threads : {1, 4}) {
    ThreadGuard tg(threads);
    checkIndexedOverlap<2>(4, 1);
    checkIndexedOverlap<2>(4, 3);
  }
}

TEST(MatvecOverlap, IndexedBitwise3DAndSingleRank) {
  checkIndexedOverlap<3>(3, 1);
  checkIndexedOverlap<2>(1, 2);  // p=1: overlap path must degrade cleanly
}

template <int DIM>
void checkCoefBlocksOverlap(int p, int ndof) {
  sim::SimComm comm(p, sim::Machine::loopback());
  auto mesh = makeMesh<DIM>(comm, 2, 5);
  const int nd2 = ndof * ndof;
  sim::PerRank<std::vector<Real>> cM(comm.size()), cK(comm.size());
  std::mt19937 gen(23);
  std::uniform_real_distribution<Real> dist(0.1, 1.0);
  for (int r = 0; r < comm.size(); ++r) {
    cM[r].resize(mesh.rank(r).nElems() * std::size_t(nd2));
    cK[r].resize(mesh.rank(r).nElems() * std::size_t(nd2));
    for (Real& v : cM[r]) v = dist(gen);
    for (Real& v : cK[r]) v = dist(gen);
  }
  Field x = smoothInput(mesh, ndof);

  comm.setOverlapEnabled(false);
  comm.resetClocks();
  Field y0 = mesh.makeField(ndof);
  fem::matvecCoefBlocks<DIM>(mesh, x, y0, ndof, cM, cK);
  const double tBlocking = comm.time();

  comm.setOverlapEnabled(true);
  comm.resetClocks();
  Field y1 = mesh.makeField(ndof);
  fem::matvecCoefBlocks<DIM>(mesh, x, y1, ndof, cM, cK);
  const double tOverlap = comm.time();

  expectFieldsEq(y0, y1, "matvecCoefBlocks overlap vs blocking");
  EXPECT_LE(tOverlap, tBlocking * (1.0 + 1e-12));
}

TEST(MatvecOverlap, CoefBlocksBitwiseAcrossThreads) {
  for (int threads : {1, 4}) {
    ThreadGuard tg(threads);
    checkCoefBlocksOverlap<2>(4, 1);
    checkCoefBlocksOverlap<2>(4, 2);
    checkCoefBlocksOverlap<3>(3, 1);
  }
}

TEST(MatvecOverlap, BoundaryPlanInvariants) {
  sim::SimComm comm(4, sim::Machine::loopback());
  auto mesh = makeMesh<2>(comm, 2, 5);
  for (int r = 0; r < comm.size(); ++r) {
    const RankMesh<2>& rm = mesh.rank(r);
    ASSERT_EQ(rm.plan.elemBoundary.size(), rm.nElems());
    ASSERT_EQ(rm.plan.nodeShared.size(), rm.nNodes());
    std::size_t nb = 0;
    for (std::size_t e = 0; e < rm.nElems(); ++e) {
      // An element is boundary iff any support node is shared.
      bool shared = false;
      const std::uint32_t lo = rm.cornerOffset[e * kNumChildren<2>];
      const std::uint32_t hi = rm.cornerOffset[e * kNumChildren<2> + 4];
      for (std::uint32_t s = lo; s < hi; ++s)
        shared = shared || rm.plan.nodeShared[rm.supports[s].node] != 0;
      EXPECT_EQ(rm.plan.elemBoundary[e] != 0, shared) << "rank " << r;
      if (rm.plan.elemBoundary[e]) ++nb;
    }
    EXPECT_EQ(nb, rm.plan.nBoundaryElems);
    // A 4-way partition of a connected mesh has both classes on each rank.
    EXPECT_GT(rm.plan.nBoundaryElems, 0u);
    EXPECT_LT(rm.plan.nBoundaryElems, rm.nElems());
  }
}

// ---- Async transfer epoch ---------------------------------------------------

TEST(TransferOverlap, NodalManyMatchesSequential) {
  sim::SimComm c1(3, sim::Machine::loopback());
  sim::SimComm c2(3, sim::Machine::loopback());
  auto oldDt1 = DistTree<2>::fromGlobal(c1, interfaceTree<2>(3, 5));
  auto oldM1 = Mesh<2>::build(c1, oldDt1);
  auto newDt1 = DistTree<2>::fromGlobal(c1, interfaceTree<2>(4, 6));
  auto newM1 = Mesh<2>::build(c1, newDt1);
  auto oldDt2 = DistTree<2>::fromGlobal(c2, interfaceTree<2>(3, 5));
  auto oldM2 = Mesh<2>::build(c2, oldDt2);
  auto newDt2 = DistTree<2>::fromGlobal(c2, interfaceTree<2>(4, 6));
  auto newM2 = Mesh<2>::build(c2, newDt2);

  Field a1 = smoothInput(oldM1, 1), b1 = smoothInput(oldM1, 2);
  Field a2 = smoothInput(oldM2, 1), b2 = smoothInput(oldM2, 2);

  for (bool useTables : {false, true}) {
    intergrid::TransferTables<2> t1, t2;
    if (useTables) {
      t1 = intergrid::gatherTransferTables(oldDt1);
      t2 = intergrid::gatherTransferTables(oldDt2);
    }
    c1.setOverlapEnabled(false);
    const long coll1Before = c1.stats().collectives;
    Field sa = intergrid::transferNodal(oldM1, a1, newM1, 1,
                                        useTables ? &t1 : nullptr);
    Field sb = intergrid::transferNodal(oldM1, b1, newM1, 2,
                                        useTables ? &t1 : nullptr);
    const long coll1 = c1.stats().collectives - coll1Before;

    c2.setOverlapEnabled(true);
    const long coll2Before = c2.stats().collectives;
    auto many = intergrid::transferNodalMany<2>(
        oldM2, {{&a2, 1}, {&b2, 2}}, newM2, useTables ? &t2 : nullptr);
    const long coll2 = c2.stats().collectives - coll2Before;
    ASSERT_EQ(many.size(), 2u);
    expectFieldsEq(sa, many[0], "transferNodalMany field a");
    expectFieldsEq(sb, many[1], "transferNodalMany field b");
    // The async epoch must not change the collective count: 2 exchanges
    // per field (+1 allgather per field without tables).
    EXPECT_EQ(coll2, coll1);
  }
}

// ---- Solver histories: commOverlap on vs off --------------------------------

template <int DIM>
chns::ChnsSolver<DIM> makeDropSolver(sim::SimComm& comm, bool overlap) {
  chns::ChnsOptions<DIM> opt;
  opt.params.Cn = 0.03;
  opt.dt = 1e-3;
  opt.blocksPerStep = 1;
  opt.remeshEvery = 1;
  opt.coarseLevel = 3;
  opt.interfaceLevel = 5;
  opt.featureLevel = 5;
  opt.referenceLevel = 5;
  opt.commOverlap = overlap;
  auto tree = DistTree<DIM>::fromGlobal(comm, uniformTree<DIM>(4));
  chns::ChnsSolver<DIM> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<DIM>& x) {
    return apps::dropPhi<DIM>(x, VecN<DIM>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  return s;
}

TEST(SolverOverlap, HistoriesIdenticalOverlapVsBlocking) {
  sim::SimComm c1(2, sim::Machine::loopback());
  sim::SimComm c2(2, sim::Machine::loopback());
  auto block = makeDropSolver<2>(c1, false);
  auto over = makeDropSolver<2>(c2, true);
  EXPECT_FALSE(c1.overlapEnabled());
  EXPECT_TRUE(c2.overlapEnabled());
  for (int step = 0; step < 3; ++step) {
    block.step();
    over.step();
    EXPECT_EQ(block.lastChNewton_.totalLinearIterations,
              over.lastChNewton_.totalLinearIterations);
    EXPECT_EQ(block.lastNs_.iterations, over.lastNs_.iterations);
    EXPECT_EQ(block.lastPp_.iterations, over.lastPp_.iterations);
    EXPECT_EQ(block.lastVuIterations_, over.lastVuIterations_);
    for (int r = 0; r < block.mesh().nRanks(); ++r) {
      EXPECT_EQ(block.tree().localOf(r), over.tree().localOf(r))
          << "step " << step << " rank " << r;
      EXPECT_EQ(block.phi()[r], over.phi()[r]) << "step " << step;
      EXPECT_EQ(block.velocity()[r], over.velocity()[r]) << "step " << step;
      EXPECT_EQ(block.pressure()[r], over.pressure()[r]) << "step " << step;
      EXPECT_EQ(block.elemCn()[r], over.elemCn()[r]) << "step " << step;
    }
  }
  // The remesh fast path must have stayed active alongside overlap.
  EXPECT_EQ(block.noopRemeshes(), over.noopRemeshes());
}

#ifdef PT_MATVEC_TIMERS
TEST(SolverOverlap, MatvecPhasesRouteToSolverTelemetry) {
  // The solver installs a MatvecPhaseScope per step, so engine phase laps
  // land in ITS telemetry (job-separable), not the process-global static.
  sim::SimComm comm(2, sim::Machine::loopback());
  auto s = makeDropSolver<2>(comm, true);
  const long globalBefore = fem::matvecPhases()["kernel"].calls();
  const long ownBefore = s.timers()["kernel"].calls();
  s.step();
  EXPECT_GT(s.timers()["kernel"].calls(), ownBefore);
  EXPECT_EQ(fem::matvecPhases()["kernel"].calls(), globalBefore);
}
#endif

TEST(SolverOverlap, ThreadedOverlapMatchesSerial) {
  sim::SimComm c1(2, sim::Machine::loopback());
  auto serial = makeDropSolver<2>(c1, true);
  serial.step();
  serial.step();

  sim::SimComm c2(2, sim::Machine::loopback());
  ThreadGuard tg(4);
  auto threaded = makeDropSolver<2>(c2, true);
  threaded.step();
  threaded.step();

  EXPECT_EQ(serial.lastChNewton_.totalLinearIterations,
            threaded.lastChNewton_.totalLinearIterations);
  for (int r = 0; r < serial.mesh().nRanks(); ++r) {
    EXPECT_EQ(serial.tree().localOf(r), threaded.tree().localOf(r));
    EXPECT_EQ(serial.phi()[r], threaded.phi()[r]);
    EXPECT_EQ(serial.velocity()[r], threaded.velocity()[r]);
  }
}

}  // namespace
}  // namespace pt
