#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "amr/remesh.hpp"
#include "apps/fields.hpp"
#include "intergrid/overlap.hpp"
#include "intergrid/transfer.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "support/rng.hpp"

namespace pt {
namespace {

template <int DIM>
OctList<DIM> randomBalancedTree(Rng& rng, Level maxLevel, Real prob) {
  OctList<DIM> out;
  std::function<void(const Octant<DIM>&)> rec = [&](const Octant<DIM>& o) {
    if (o.level < maxLevel && rng.bernoulli(prob)) {
      for (int c = 0; c < kNumChildren<DIM>; ++c) rec(o.child(c));
    } else {
      out.push_back(o);
    }
  };
  rec(Octant<DIM>::root());
  return balanceTree(out);
}

template <int DIM>
Real linearFn(const VecN<DIM>& x) {
  Real v = 0.5;
  for (int d = 0; d < DIM; ++d) v += (d + 1.5) * x[d];
  return v;
}

// ---- ⊑ order and overlap searches ------------------------------------------

TEST(OverlapOrder, BasicRelations) {
  Octant<2> root = Octant<2>::root();
  Octant<2> a = root.child(0), b = root.child(1);
  Octant<2> aa = a.child(3);
  EXPECT_TRUE(intergrid::sqLessEq(a, aa));  // same class
  EXPECT_TRUE(intergrid::sqLessEq(aa, a));  // same class (symmetric in ~)
  EXPECT_TRUE(intergrid::sqLess(a, b));
  EXPECT_FALSE(intergrid::sqLess(b, a));
  EXPECT_TRUE(intergrid::sqLessEq(aa, b));
  EXPECT_FALSE(intergrid::sqLessEq(b, aa));
}

TEST(OverlapOrder, LocalRangeMatchesBruteForce) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    OctList<2> g = randomBalancedTree<2>(rng, 5, 0.5);
    OctList<2> h = randomBalancedTree<2>(rng, 5, 0.5);
    // Pick a random contiguous interval in h as the "partition".
    const std::size_t lo = rng.uniformInt(0, h.size() - 1);
    const std::size_t hi = rng.uniformInt(lo, h.size() - 1);
    auto [i0, i1] = intergrid::overlappedLocalRange(g, h[lo], h[hi]);
    for (std::size_t i = 0; i < g.size(); ++i) {
      // Brute force: g[i] belongs in the range iff it is not strictly
      // before h[lo] and not strictly after h[hi].
      const bool inRange =
          !intergrid::sqLess(g[i], h[lo]) && !intergrid::sqLess(h[hi], g[i]);
      EXPECT_EQ(i >= i0 && i < i1, inRange)
          << "trial " << trial << " i " << i;
    }
  }
}

TEST(OverlapOrder, RankRangeFindsAllOverlappingPartitions) {
  Rng rng(43);
  OctList<2> h = randomBalancedTree<2>(rng, 5, 0.6);
  const int p = 5;
  intergrid::PartitionEndpoints<2> ends;
  ends.first.resize(p);
  ends.last.resize(p);
  ends.hasData.assign(p, 1);
  std::vector<std::pair<std::size_t, std::size_t>> cuts;
  std::size_t pos = 0;
  for (int r = 0; r < p; ++r) {
    std::size_t take = h.size() / p;
    if (r == p - 1) take = h.size() - pos;
    ends.first[r] = h[pos];
    ends.last[r] = h[pos + take - 1];
    cuts.push_back({pos, pos + take});
    pos += take;
  }
  // Query with random octants; verify against brute force membership.
  for (int trial = 0; trial < 100; ++trial) {
    const Octant<2>& q = h[rng.uniformInt(0, h.size() - 1)];
    const Octant<2> probe = (trial % 2) ? q : q.parent();
    auto ranks = intergrid::overlappedRanks(ends, probe, probe);
    for (int r = 0; r < p; ++r) {
      bool expect = false;
      for (std::size_t i = cuts[r].first; i < cuts[r].second && !expect; ++i)
        expect = !intergrid::sqLess(h[i], probe) &&
                 !intergrid::sqLess(probe, h[i]);
      const bool got =
          std::find(ranks.begin(), ranks.end(), r) != ranks.end();
      EXPECT_EQ(got, expect);
    }
  }
}

// ---- Nodal transfer ---------------------------------------------------------

struct XferCase {
  int ranks;
  unsigned seed;
};
class XferP : public ::testing::TestWithParam<XferCase> {};

TEST_P(XferP, LinearFieldExactUnderRandomRemesh) {
  const auto [p, seed] = GetParam();
  sim::SimComm comm(p, sim::Machine::loopback());
  Rng rng(seed);
  auto oldTree = DistTree<2>::fromGlobal(comm, randomBalancedTree<2>(rng, 5, 0.5));
  auto newTree = DistTree<2>::fromGlobal(comm, randomBalancedTree<2>(rng, 5, 0.5));
  auto oldMesh = Mesh<2>::build(comm, oldTree);
  auto newMesh = Mesh<2>::build(comm, newTree);
  Field u = oldMesh.makeField();
  fem::setByPosition<2>(oldMesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = linearFn<2>(x);
  });
  Field v = intergrid::transferNodal(oldMesh, u, newMesh, 1);
  for (int r = 0; r < p; ++r) {
    const auto& rm = newMesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li)
      EXPECT_NEAR(v[r][li], linearFn<2>(nodeCoords(rm.nodeKeys[li])), 1e-12);
  }
}

TEST_P(XferP, InjectionExactOnCoarsening) {
  // Fine -> coarse: every coarse node coincides with a fine node, so any
  // field (not just linear) transfers exactly (injection).
  const auto [p, seed] = GetParam();
  sim::SimComm comm(p, sim::Machine::loopback());
  auto fineTree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
  auto coarseTree = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  auto fineMesh = Mesh<2>::build(comm, fineTree);
  auto coarseMesh = Mesh<2>::build(comm, coarseTree);
  Field u = fineMesh.makeField();
  fem::setByPosition<2>(fineMesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(7 * x[0]) * std::cos(5 * x[1]);
  });
  Field v = intergrid::transferNodal(fineMesh, u, coarseMesh, 1);
  for (int r = 0; r < p; ++r) {
    const auto& rm = coarseMesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const auto x = nodeCoords(rm.nodeKeys[li]);
      EXPECT_NEAR(v[r][li], std::sin(7 * x[0]) * std::cos(5 * x[1]), 1e-12);
    }
  }
}

TEST_P(XferP, MultiLevelJumpEqualsComposition) {
  // Jumping 3 levels at once must equal three single-level transfers
  // (coarse-to-fine interpolation of multilinear data is exact).
  const auto [p, seed] = GetParam();
  sim::SimComm comm(p, sim::Machine::loopback());
  std::vector<Mesh<2>> meshes;
  for (Level L = 2; L <= 5; ++L) {
    auto t = DistTree<2>::fromGlobal(comm, uniformTree<2>(L));
    meshes.push_back(Mesh<2>::build(comm, t));
  }
  Field u = meshes[0].makeField();
  fem::setByPosition<2>(meshes[0], u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::sin(4 * x[0]) + x[1] * x[1];
  });
  Field direct = intergrid::transferNodal(meshes[0], u, meshes[3], 1);
  Field step = u;
  for (int i = 1; i <= 3; ++i)
    step = intergrid::transferNodal(meshes[i - 1], step, meshes[i], 1);
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < direct[r].size(); ++i)
      EXPECT_NEAR(direct[r][i], step[r][i], 1e-12);
}

TEST_P(XferP, PushTransferMatchesQueryTransferOnRefinement) {
  const auto [p, seed] = GetParam();
  sim::SimComm comm(p, sim::Machine::loopback());
  Rng rng(seed + 100);
  OctList<2> coarse = randomBalancedTree<2>(rng, 4, 0.4);
  // Pure refinement of the coarse tree (multi-level).
  std::vector<Level> want(coarse.size());
  for (std::size_t i = 0; i < coarse.size(); ++i)
    want[i] =
        static_cast<Level>(coarse[i].level + rng.uniformInt(0, 3));
  OctList<2> fine = balanceTree(refine(coarse, want));
  auto oldTree = DistTree<2>::fromGlobal(comm, coarse);
  auto newTree = DistTree<2>::fromGlobal(comm, fine);
  auto oldMesh = Mesh<2>::build(comm, oldTree);
  auto newMesh = Mesh<2>::build(comm, newTree);
  Field u = oldMesh.makeField();
  fem::setByPosition<2>(oldMesh, u, 1, [](const VecN<2>& x, Real* v) {
    v[0] = std::cos(3 * x[0]) * (1 + x[1]);
  });
  Field q = intergrid::transferNodal(oldMesh, u, newMesh, 1);
  Field push = intergrid::transferNodalPush(oldMesh, u, newMesh, 1);
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < q[r].size(); ++i)
      EXPECT_NEAR(q[r][i], push[r][i], 1e-12) << "rank " << r;
}

TEST_P(XferP, MultiDofTransfer) {
  const auto [p, seed] = GetParam();
  sim::SimComm comm(p, sim::Machine::loopback());
  auto oldTree = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  auto newTree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto oldMesh = Mesh<2>::build(comm, oldTree);
  auto newMesh = Mesh<2>::build(comm, newTree);
  Field u = oldMesh.makeField(3);
  fem::setByPosition<2>(oldMesh, u, 3, [](const VecN<2>& x, Real* v) {
    v[0] = x[0];
    v[1] = x[1];
    v[2] = 1 + x[0] - 2 * x[1];
  });
  Field v = intergrid::transferNodal(oldMesh, u, newMesh, 3);
  for (int r = 0; r < p; ++r) {
    const auto& rm = newMesh.rank(r);
    for (std::size_t li = 0; li < rm.nNodes(); ++li) {
      const auto x = nodeCoords(rm.nodeKeys[li]);
      EXPECT_NEAR(v[r][li * 3 + 0], x[0], 1e-12);
      EXPECT_NEAR(v[r][li * 3 + 1], x[1], 1e-12);
      EXPECT_NEAR(v[r][li * 3 + 2], 1 + x[0] - 2 * x[1], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, XferP,
                         ::testing::Values(XferCase{1, 11}, XferCase{2, 12},
                                           XferCase{4, 13}, XferCase{7, 14}));

// ---- Cell-centered transfer --------------------------------------------------

TEST(CellTransfer, CopyOnRefinementAverageOnCoarsening) {
  sim::SimComm comm(3, sim::Machine::loopback());
  auto coarseT = DistTree<2>::fromGlobal(comm, uniformTree<2>(2));  // 16
  auto fineT = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));    // 256
  // Cell data = 1000*level-4 Morton index on the coarse grid.
  sim::PerRank<std::vector<Real>> cvals(3);
  {
    int idx = 0;
    for (int r = 0; r < 3; ++r) {
      cvals[r].resize(coarseT.localOf(r).size());
      for (auto& v : cvals[r]) v = 1000.0 + idx++;
    }
  }
  // Coarse -> fine: every fine cell gets its ancestor's value.
  auto fvals = intergrid::transferCell(coarseT, cvals, fineT);
  for (int r = 0; r < 3; ++r) {
    const auto& elems = fineT.localOf(r);
    for (std::size_t e = 0; e < elems.size(); ++e) {
      // Find the coarse ancestor's value by searching the coarse grid.
      const Octant<2> anc = elems[e].ancestorAt(2);
      Real expect = -1;
      for (int q = 0; q < 3; ++q) {
        const auto& ce = coarseT.localOf(q);
        for (std::size_t i = 0; i < ce.size(); ++i)
          if (ce[i] == anc) expect = cvals[q][i];
      }
      EXPECT_DOUBLE_EQ(fvals[r][e], expect);
    }
  }
  // Fine -> coarse: averaging the constant-per-ancestor data returns it.
  auto back = intergrid::transferCell(fineT, fvals, coarseT);
  for (int r = 0; r < 3; ++r)
    for (std::size_t e = 0; e < back[r].size(); ++e)
      EXPECT_NEAR(back[r][e], cvals[r][e], 1e-10);
}

TEST(CellTransfer, AverageConservesIntegral) {
  sim::SimComm comm(2, sim::Machine::loopback());
  Rng rng(55);
  auto fineT =
      DistTree<2>::fromGlobal(comm, randomBalancedTree<2>(rng, 5, 0.6));
  auto coarseT = DistTree<2>::fromGlobal(comm, uniformTree<2>(2));
  sim::PerRank<std::vector<Real>> fvals(2);
  Real fineIntegral = 0;
  for (int r = 0; r < 2; ++r) {
    const auto& elems = fineT.localOf(r);
    fvals[r].resize(elems.size());
    for (std::size_t e = 0; e < elems.size(); ++e) {
      fvals[r][e] = rng.uniform(-1, 1);
      const Real vol = elems[e].physSize() * elems[e].physSize();
      fineIntegral += fvals[r][e] * vol;
    }
  }
  auto cvals = intergrid::transferCell(fineT, fvals, coarseT);
  Real coarseIntegral = 0;
  for (int r = 0; r < 2; ++r) {
    const auto& elems = coarseT.localOf(r);
    for (std::size_t e = 0; e < elems.size(); ++e)
      coarseIntegral +=
          cvals[r][e] * elems[e].physSize() * elems[e].physSize();
  }
  EXPECT_NEAR(coarseIntegral, fineIntegral, 1e-12);
}

// ---- Remesh driver -----------------------------------------------------------

TEST(Remesh, RefineAndCoarsenWithFieldTransfer) {
  sim::SimComm comm(3, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(4));
  auto mesh = Mesh<2>::build(comm, tree);
  Field phi = mesh.makeField();
  fem::setByPosition<2>(mesh, phi, 1, [](const VecN<2>& x, Real* v) {
    v[0] = apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, 0.03);
  });
  // Refine near the interface to 6, coarsen the far field to 2.
  sim::PerRank<std::vector<Level>> want(3);
  for (int r = 0; r < 3; ++r) {
    const auto& elems = tree.localOf(r);
    want[r].resize(elems.size());
    for (std::size_t e = 0; e < elems.size(); ++e) {
      auto c = elems[e].centerCoords();
      const Real d = std::abs(std::hypot(c[0] - 0.5, c[1] - 0.5) - 0.25);
      want[r][e] = d < 0.1 ? Level(6) : Level(2);
    }
  }
  auto newTree = remesh(tree, want);
  EXPECT_TRUE(newTree.globallyLinear());
  auto leaves = newTree.gather();
  EXPECT_TRUE(isBalanced(leaves));
  EXPECT_NEAR(coveredVolume(leaves), 1.0, 1e-12);
  auto hist = levelHistogram(leaves);
  EXPECT_GT(hist[6], 0u);
  // The far field coarsens below the original level 4; full corner-2:1
  // grading around the jagged level-6 band limits how coarse it can get.
  std::size_t coarserThanOriginal = hist[0] + hist[1] + hist[2] + hist[3];
  EXPECT_GT(coarserThanOriginal + hist[4], 0u);
  EXPECT_LT(hist[4], 256u);  // not everything stayed at the original level
  // Transfer the phase field and verify its range and interface location.
  auto newMesh = Mesh<2>::build(comm, newTree);
  Field phiNew = intergrid::transferNodal(mesh, phi, newMesh, 1);
  Real minV = 1e9, maxV = -1e9;
  for (int r = 0; r < 3; ++r)
    for (Real v : phiNew[r]) {
      minV = std::min(minV, v);
      maxV = std::max(maxV, v);
    }
  EXPECT_GE(minV, -1.0 - 1e-9);
  EXPECT_LE(maxV, 1.0 + 1e-9);
  EXPECT_LT(minV, -0.9);  // liquid core survived
  EXPECT_GT(maxV, 0.9);   // bulk survived
}

TEST(Remesh, IdempotentWhenTargetsMatch) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(3));
  sim::PerRank<std::vector<Level>> want(2);
  for (int r = 0; r < 2; ++r)
    want[r].assign(tree.localOf(r).size(), Level(3));
  auto out = remesh(tree, want);
  auto a = tree.gather(), b = out.gather();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

}  // namespace
}  // namespace pt
