// End-to-end integration tests: the full pipeline the jet-atomization runs
// exercise — solve + identify + remesh + transfer + checkpoint + restart on
// more ranks + continue — plus a 3D solver smoke test.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/fields.hpp"
#include "chns/checkpoint.hpp"
#include "chns/solver.hpp"
#include "io/vtk.hpp"

namespace pt {
namespace {

chns::ChnsOptions<2> dropOptions() {
  chns::ChnsOptions<2> opt;
  opt.params.Re = 50;
  opt.params.We = 5;
  opt.params.Pe = 50;
  opt.params.Cn = 0.04;
  opt.dt = 2e-3;
  opt.remeshEvery = 2;
  opt.coarseLevel = 3;
  opt.interfaceLevel = 5;
  opt.featureLevel = 6;
  opt.referenceLevel = 6;
  opt.identify.cnCoarse = opt.params.Cn;
  opt.identify.cnFine = opt.params.Cn / 2;
  return opt;
}

TEST(Integration, SolveRemeshCheckpointRestartContinue) {
  const std::string path = "/tmp/pt_integration_ck.bin";
  Real massAtCheckpoint = 0, energyAtCheckpoint = 0;
  // Phase 1: run 3 steps (with remeshing) on 2 ranks and checkpoint.
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    auto opt = dropOptions();
    auto tree = DistTree<2>::fromGlobal(comm, uniformTree<2>(5));
    chns::ChnsSolver<2> s(comm, std::move(tree), opt);
    s.setInitialCondition([&](const VecN<2>& x) {
      return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
    });
    for (int i = 0; i < 3; ++i) s.step();
    massAtCheckpoint = s.phiIntegral();
    energyAtCheckpoint = s.freeEnergy();
    chns::saveSolverState<2>(path, s);
  }
  // Phase 2: restart on 5 ranks; diagnostics must match the checkpoint
  // tightly, and the run must continue stably.
  {
    sim::SimComm comm(5, sim::Machine::loopback());
    auto s = chns::restoreSolverState<2>(comm, path, dropOptions());
    EXPECT_NEAR(s.phiIntegral(), massAtCheckpoint,
                1e-10 * std::abs(massAtCheckpoint));
    EXPECT_NEAR(s.freeEnergy(), energyAtCheckpoint,
                1e-8 * std::abs(energyAtCheckpoint));
    // All 5 ranks active after the restore's repartition.
    for (int r = 0; r < 5; ++r)
      EXPECT_FALSE(s.tree().localOf(r).empty());
    const Real e0 = s.freeEnergy();
    for (int i = 0; i < 2; ++i) s.step();
    EXPECT_TRUE(s.lastChNewton_.converged);
    EXPECT_TRUE(s.lastPp_.converged);
    EXPECT_NEAR(s.phiIntegral(), massAtCheckpoint,
                0.02 * std::abs(massAtCheckpoint));
    EXPECT_LT(s.freeEnergy(), e0 + 1e-9);  // still dissipative
  }
  std::remove(path.c_str());
}

TEST(Integration, RestartMatchesUninterruptedRun) {
  const std::string path = "/tmp/pt_integration_ck2.bin";
  auto opt = dropOptions();
  opt.remeshEvery = 0;  // fixed mesh so trajectories are comparable
  auto ic = [&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  };
  // Uninterrupted: 4 steps on 2 ranks.
  Real massRef = 0, energyRef = 0;
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ChnsSolver<2> s(comm, DistTree<2>::fromGlobal(comm, uniformTree<2>(4)),
                          opt);
    s.setInitialCondition(ic);
    for (int i = 0; i < 4; ++i) s.step();
    massRef = s.phiIntegral();
    energyRef = s.freeEnergy();
  }
  // Interrupted: 2 steps, checkpoint, restart on 3 ranks, 2 more steps.
  {
    sim::SimComm comm(2, sim::Machine::loopback());
    chns::ChnsSolver<2> s(comm, DistTree<2>::fromGlobal(comm, uniformTree<2>(4)),
                          opt);
    s.setInitialCondition(ic);
    for (int i = 0; i < 2; ++i) s.step();
    chns::saveSolverState<2>(path, s);
  }
  {
    sim::SimComm comm(3, sim::Machine::loopback());
    auto s = chns::restoreSolverState<2>(comm, path, opt);
    for (int i = 0; i < 2; ++i) s.step();
    EXPECT_NEAR(s.phiIntegral(), massRef, 1e-9 * std::abs(massRef));
    EXPECT_NEAR(s.freeEnergy(), energyRef, 1e-5 * std::abs(energyRef));
  }
  std::remove(path.c_str());
}

TEST(Integration, Chns3dSmokeTest) {
  sim::SimComm comm(2, sim::Machine::loopback());
  chns::ChnsOptions<3> opt;
  opt.params.Re = 30;
  opt.params.We = 5;
  opt.params.Pe = 30;
  opt.params.Cn = 0.08;
  opt.dt = 2e-3;
  opt.chNewton.linear.maxIterations = 150;
  auto tree = DistTree<3>::fromGlobal(comm, uniformTree<3>(3));
  chns::ChnsSolver<3> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<3>& x) {
    return apps::dropPhi<3>(x, VecN<3>{{0.5, 0.5, 0.5}}, 0.3, opt.params.Cn);
  });
  const Real m0 = s.phiIntegral();
  const Real e0 = s.freeEnergy();
  for (int i = 0; i < 2; ++i) s.step();
  EXPECT_TRUE(s.lastChNewton_.converged);
  EXPECT_TRUE(s.lastNs_.converged);
  EXPECT_TRUE(s.lastPp_.converged);
  EXPECT_NEAR(s.phiIntegral(), m0, 1e-5 * std::abs(m0) + 1e-7);
  EXPECT_LT(s.freeEnergy(), e0 + 1e-9);
  // Bounds stay sane in 3D too.
  Real lo = 1e9, hi = -1e9;
  for (int r = 0; r < 2; ++r)
    for (Real v : s.phi()[r]) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  EXPECT_GT(lo, -1.2);
  EXPECT_LT(hi, 1.2);
}

TEST(Integration, Remesh3dWithIdentifierAndTransfer) {
  sim::SimComm comm(3, sim::Machine::loopback());
  chns::ChnsOptions<3> opt;
  opt.params.Cn = 0.06;
  opt.dt = 1e-3;
  opt.coarseLevel = 2;
  opt.interfaceLevel = 4;
  opt.featureLevel = 5;
  opt.referenceLevel = 5;
  opt.identify.cnCoarse = opt.params.Cn;
  opt.identify.cnFine = opt.params.Cn / 2;
  opt.identify.delta = -0.6;
  auto tree = DistTree<3>::fromGlobal(comm, uniformTree<3>(3));
  chns::ChnsSolver<3> s(comm, std::move(tree), opt);
  s.setInitialCondition([&](const VecN<3>& x) {
    return apps::dropPhi<3>(x, VecN<3>{{0.5, 0.5, 0.5}}, 0.28, opt.params.Cn);
  });
  const Real m0 = s.phiIntegral();
  s.remeshNow();
  EXPECT_TRUE(s.tree().globallyLinear());
  EXPECT_TRUE(isBalanced(s.tree().gather()));
  auto hist = levelHistogram(s.tree().gather());
  EXPECT_GT(hist[4], 0u);  // interface refined
  EXPECT_GT(hist[2] + hist[3], 0u);  // far field coarsened or kept
  EXPECT_NEAR(s.phiIntegral(), m0, 0.03 * std::abs(m0));
}

TEST(Integration, VtkSnapshotOfLiveSolver) {
  sim::SimComm comm(2, sim::Machine::loopback());
  auto opt = dropOptions();
  chns::ChnsSolver<2> s(comm, DistTree<2>::fromGlobal(comm, uniformTree<2>(4)),
                        opt);
  s.setInitialCondition([&](const VecN<2>& x) {
    return apps::dropPhi<2>(x, VecN<2>{{0.5, 0.5}}, 0.25, opt.params.Cn);
  });
  s.step();
  const std::string path = "/tmp/pt_integration_snapshot.vtk";
  io::writeVtk<2>(path, s.mesh(),
                  {{"phi", &s.phi(), 1},
                   {"vel", &s.velocity(), 2},
                   {"p", &s.pressure(), 1}},
                  {{"cn", &s.elemCn()}});
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pt
